package normalize

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"darklight/internal/forum"
)

// messyDataset builds a dataset that exercises every pipeline step: bots,
// duplicate bodies, quotes, edit marks, PGP blocks, mail addresses, URLs,
// emoji, overlong tokens, short messages, spam, and non-English text —
// spread over enough aliases that every worker chunk is non-trivial.
func messyDataset(aliases int) *forum.Dataset {
	d := forum.NewDataset("Messy", forum.PlatformReddit)
	english := "this is a perfectly normal english sentence about shipping and quality with plenty of distinct words in it"
	variants := []string{
		english,
		"> quoted line from someone else\n" + english,
		"[quote=bob]their words here[/quote] " + english,
		english + "\nEdit by someone: fixed a typo",
		"reach me at vendor+orders@proton-mail.com " + english,
		"see https://www.reddit.com/r/x/comments/1 " + english,
		english + " 🚀🔥 great stuff 👍",
		"before " + strings.Repeat("=", 60) + " after " + english,
		"short msg",
		strings.Repeat("buy now ", 12),
		"la calidad era buena pero el envío tardó demasiado tiempo esta vez la verdad es que no volvería a comprar",
		"verify my key\n-----BEGIN PGP PUBLIC KEY BLOCK-----\nAAAA\nBBBB\n-----END PGP PUBLIC KEY BLOCK-----\n" + english,
		"   " + english + "   ",
	}
	for i := 0; i < aliases; i++ {
		name := fmt.Sprintf("user%03d", i)
		if i%17 == 0 {
			name = fmt.Sprintf("tipbot%d", i)
		}
		a := forum.Alias{Name: name}
		for j := 0; j < 6; j++ {
			body := variants[(i*3+j)%len(variants)]
			if j == 5 && i%4 == 0 {
				body = variants[(i*3)%len(variants)] // duplicate of message 0
			}
			a.Messages = append(a.Messages, forum.Message{
				ID:       fmt.Sprintf("%s-%d", name, j),
				Author:   name,
				Body:     body,
				PostedAt: t0.Add(time.Duration(i*13+j) * time.Minute),
			})
		}
		d.Add(a)
	}
	return d
}

func cloneDataset(d *forum.Dataset) *forum.Dataset {
	out := forum.NewDataset(d.Name, d.Platform)
	for i := range d.Aliases {
		a := d.Aliases[i]
		msgs := make([]forum.Message, len(a.Messages))
		copy(msgs, a.Messages)
		a.Messages = msgs
		out.Aliases = append(out.Aliases, a)
	}
	return out
}

// TestRunParallelMatchesSequential pins the parallel runner to the
// sequential one: for every worker count the surviving aliases, every
// message body and timestamp, and every Report counter must be
// bit-identical to Workers=1.
func TestRunParallelMatchesSequential(t *testing.T) {
	base := messyDataset(101)

	seqData := cloneDataset(base)
	seqReport := NewPipeline(WithWorkers(1)).Run(seqData)

	for _, workers := range []int{2, 3, 8, 64, 1000} {
		parData := cloneDataset(base)
		parReport := NewPipeline(WithWorkers(workers)).Run(parData)
		if !reflect.DeepEqual(parReport, seqReport) {
			t.Errorf("Workers=%d report diverges:\n%v\nvs sequential:\n%v", workers, parReport, seqReport)
		}
		if !reflect.DeepEqual(parData, seqData) {
			t.Errorf("Workers=%d dataset diverges from sequential run", workers)
		}
	}
}

// TestRunParallelEmptyAndTiny covers the degenerate fan-outs: zero aliases
// (no worker spawned) and fewer aliases than workers.
func TestRunParallelEmptyAndTiny(t *testing.T) {
	empty := forum.NewDataset("Empty", forum.PlatformReddit)
	r := NewPipeline(WithWorkers(8)).Run(empty)
	if empty.Len() != 0 {
		t.Errorf("empty dataset grew aliases")
	}
	if len(r.Steps) == 0 {
		t.Errorf("report missing steps")
	}

	tiny := messyDataset(2)
	seq := cloneDataset(tiny)
	seqR := NewPipeline(WithWorkers(1)).Run(seq)
	parR := NewPipeline(WithWorkers(8)).Run(tiny)
	if !reflect.DeepEqual(parR, seqR) || !reflect.DeepEqual(tiny, seq) {
		t.Errorf("tiny dataset diverges between Workers=1 and Workers=8")
	}
}
