package darklight

// The benchmark harness regenerates every table and figure of the paper
// (one benchmark per artefact) and adds the ablation benches DESIGN.md §5
// calls out. Accuracy/AUC shapes are attached to each benchmark via
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as a compact
// reproduction report.
//
// Benchmarks share one lazily-built lab sized for a single-CPU box; the
// heavy benches take more than a second per op, so the default -benchtime
// runs them once. Use cmd/experiments for the full-scale sweeps.

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"darklight/internal/anonymize"
	"darklight/internal/attribution"
	"darklight/internal/baselines"
	"darklight/internal/corpus"
	"darklight/internal/eval"
	"darklight/internal/experiments"
	"darklight/internal/features"
	"darklight/internal/forum"
	"darklight/internal/obs"
	"darklight/internal/sparse"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
	labErr  error
)

func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		cfg := experiments.DefaultLabConfig()
		cfg.Scale = 0.03
		cfg.MaxUnknowns = 60
		cfg.Table3Known = 250
		cfg.Table3Unknowns = 40
		cfg.BaselineKnown = 250
		cfg.BaselineUnknowns = 30
		cfg.BatchUnknowns = 10
		lab, labErr = experiments.NewLab(cfg)
	})
	if labErr != nil {
		b.Fatal(labErr)
	}
	return lab
}

// ---------------------------------------------------------------- tables

func BenchmarkTable1RedditComposition(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var drugs float64
	for i := 0; i < b.N; i++ {
		rep := l.Table1()
		for _, row := range rep.Rows {
			if row.Topic == "Drugs" {
				drugs = row.MessagesPct
			}
		}
	}
	b.ReportMetric(drugs, "drugs-msg-%")
}

func BenchmarkTable2FeatureExtraction(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var words, chars int
	for i := 0; i < b.N; i++ {
		l.ResetCaches()
		rep, err := l.Table2()
		if err != nil {
			b.Fatal(err)
		}
		words, chars = rep.RealisedWordGrams, rep.RealisedCharGrams
	}
	b.ReportMetric(float64(words), "word-grams")
	b.ReportMetric(float64(chars), "char-grams")
}

func BenchmarkTable3KAttribution(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.Table3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = l.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	first, last := rep.Rows[0], rep.Rows[len(rep.Rows)-1]
	b.ReportMetric(100*first.K1All, "acc@1-400w-%")
	b.ReportMetric(100*last.K1All, "acc@1-1700w-%")
	b.ReportMetric(100*last.K10All, "acc@10-1700w-%")
}

func BenchmarkTable4Refinement(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var reddit int
	for i := 0; i < b.N; i++ {
		rep := l.Table4()
		reddit = rep.Rows[0].Aliases
	}
	b.ReportMetric(float64(reddit), "reddit-aliases")
}

func BenchmarkTable5Thresholds(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.Table5Report
	for i := 0; i < b.N; i++ {
		l.ResetCaches()
		var err error
		rep, err = l.Table5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.GlobalThreshold, "global-threshold")
	b.ReportMetric(100*rep.DarkAccuracy, "dark-acc@10-%")
}

func BenchmarkTable6ReductionAUC(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.Table6Report
	for i := 0; i < b.N; i++ {
		l.ResetCaches()
		var err error
		rep, err = l.Table6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rep.Rows {
		if row.Forum == "Reddit" {
			b.ReportMetric(row.AUCWithReduction, "reddit-auc-with")
			b.ReportMetric(row.AUCWithout, "reddit-auc-without")
		}
	}
}

// --------------------------------------------------------------- figures

func BenchmarkFigure1WordCDF(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var atRefineThreshold float64
	for i := 0; i < b.N; i++ {
		rep := l.Figure1()
		for j, t := range rep.Thresholds {
			if t == 1500 {
				atRefineThreshold = rep.TMGCDF[j]
			}
		}
	}
	b.ReportMetric(100*atRefineThreshold, "tmg-cdf@1500w-%")
}

func BenchmarkFigure2ThresholdPR(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.Figure2Report
	for i := 0; i < b.N; i++ {
		l.ResetCaches()
		var err error
		rep, err = l.Figure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Threshold, "threshold")
	b.ReportMetric(100*rep.W1Precision, "w1-precision-%")
	b.ReportMetric(100*rep.W1Recall, "w1-recall-%")
	b.ReportMetric(rep.W2.AUC(), "w2-auc")
}

func BenchmarkFigure3Baselines(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.Figure3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = l.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.Standard.AUC(), "auc-standard")
	b.ReportMetric(rep.Koppel.AUC(), "auc-koppel")
	b.ReportMetric(rep.Ours.AUC(), "auc-ours")
	b.ReportMetric(rep.KoppelTime.Seconds()/rep.OursTime.Seconds(), "koppel/ours-time")
}

func BenchmarkFigure4ActivityImpact(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.Figure4Report
	for i := 0; i < b.N; i++ {
		l.ResetCaches()
		var err error
		rep, err = l.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rep.RedditText[0], "reddit-k1-text-%")
	b.ReportMetric(100*rep.RedditAll[0], "reddit-k1-all-%")
}

func BenchmarkFigure5ReductionPR(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.Figure5Report
	for i := 0; i < b.N; i++ {
		l.ResetCaches()
		var err error
		rep, err = l.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rep.Table.Curves)), "curves")
}

// ------------------------------------------------- §V and §IV-J results

func BenchmarkCrossForumTMGDM(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.CrossForumReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = l.TMGvsDM()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rep.Pairs)), "matches")
	b.ReportMetric(float64(rep.TruePositives), "true-positives")
}

func BenchmarkDeanonymizeRedditDarkWeb(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.CrossForumReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = l.RedditVsDarkWeb()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rep.Pairs)), "matches")
	b.ReportMetric(float64(rep.Counts[eval.VerdictTrue]), "true-verdicts")
}

func BenchmarkBatchProcessing(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	var rep *experiments.BatchReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = l.BatchProcedure()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rep.Precision, "batched-precision-%")
	b.ReportMetric(100*rep.Recall, "batched-recall-%")
}

// ------------------------------------------------------------- ablations

// benchSubjects returns a small matched known/probe pair for ablations.
func benchSubjects(b *testing.B) (known, probes []attribution.Subject) {
	l := benchLab(b)
	pipe := NewPipeline()
	main, err := pipe.Subjects(l.Reddit)
	if err != nil {
		b.Fatal(err)
	}
	ae, err := pipe.Subjects(l.AEReddit)
	if err != nil {
		b.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range main {
		names[s.Name] = true
	}
	for _, s := range ae {
		if names[s.Name] && len(probes) < 40 {
			probes = append(probes, s)
		}
	}
	all := main
	if len(main) > 300 {
		main = main[:300]
	}
	// Re-attach any probe mate the truncation dropped.
	seen := map[string]bool{}
	for _, s := range main {
		seen[s.Name] = true
	}
	for _, p := range probes {
		if seen[p.Name] {
			continue
		}
		for _, s := range all {
			if s.Name == p.Name {
				main = append(main, s)
				seen[p.Name] = true
				break
			}
		}
	}
	return main, probes
}

func ablationAccuracy(b *testing.B, opts attribution.Options, known, probes []attribution.Subject) float64 {
	b.Helper()
	m, err := attribution.NewMatcher(known, opts)
	if err != nil {
		b.Fatal(err)
	}
	results, err := m.MatchAll(context.Background(), probes)
	if err != nil {
		b.Fatal(err)
	}
	hits := 0
	for _, r := range results {
		if r.Best.Name == r.Unknown {
			hits++
		}
	}
	return float64(hits) / float64(len(probes))
}

// BenchmarkAblationRescoring compares the two-stage TF-IDF recomputation
// against reusing stage-1 scores (DESIGN.md ablation 1).
func BenchmarkAblationRescoring(b *testing.B) {
	known, probes := benchSubjects(b)
	b.ResetTimer()
	var two, one float64
	for i := 0; i < b.N; i++ {
		opts := attribution.DefaultOptions()
		two = ablationAccuracy(b, opts, known, probes)
		opts.TwoStage = false
		one = ablationAccuracy(b, opts, known, probes)
	}
	b.ReportMetric(100*two, "acc-two-stage-%")
	b.ReportMetric(100*one, "acc-one-stage-%")
}

// BenchmarkAblationActivityWeight sweeps the activity block norm
// (DESIGN.md ablation 2).
func BenchmarkAblationActivityWeight(b *testing.B) {
	known, probes := benchSubjects(b)
	b.ResetTimer()
	weights := []float64{0, 0.35, 0.7, 1.4}
	accs := make([]float64, len(weights))
	for i := 0; i < b.N; i++ {
		for wi, w := range weights {
			opts := attribution.DefaultOptions()
			opts.TwoStage = false
			opts.ActivityWeight = w
			opts.UseActivity = w > 0
			accs[wi] = ablationAccuracy(b, opts, known, probes)
		}
	}
	b.ReportMetric(100*accs[0], "acc-w0-%")
	b.ReportMetric(100*accs[2], "acc-w0.7-%")
	b.ReportMetric(100*accs[3], "acc-w1.4-%")
}

// BenchmarkAblationVocabSize compares the Table II budgets against a
// 10×-smaller vocabulary (DESIGN.md ablation 3).
func BenchmarkAblationVocabSize(b *testing.B) {
	known, probes := benchSubjects(b)
	b.ResetTimer()
	var full, small float64
	for i := 0; i < b.N; i++ {
		opts := attribution.DefaultOptions()
		opts.TwoStage = false
		full = ablationAccuracy(b, opts, known, probes)
		opts.Reduction.MaxWordGrams = 6000
		opts.Reduction.MaxCharGrams = 3000
		small = ablationAccuracy(b, opts, known, probes)
	}
	b.ReportMetric(100*full, "acc-60k/30k-%")
	b.ReportMetric(100*small, "acc-6k/3k-%")
}

// BenchmarkAblationLemma toggles lemmatisation (DESIGN.md ablation 4).
func BenchmarkAblationLemma(b *testing.B) {
	known, probes := benchSubjects(b)
	b.ResetTimer()
	var with, without float64
	for i := 0; i < b.N; i++ {
		opts := attribution.DefaultOptions()
		opts.TwoStage = false
		with = ablationAccuracy(b, opts, known, probes)
		opts.Reduction.Lemmatize = false
		without = ablationAccuracy(b, opts, known, probes)
	}
	b.ReportMetric(100*with, "acc-lemma-%")
	b.ReportMetric(100*without, "acc-no-lemma-%")
}

// BenchmarkAblationMessageOrder compares the paper's longest-first message
// selection with random selection at the same word budget (DESIGN.md
// ablation 5).
func BenchmarkAblationMessageOrder(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	actOpts := l.SubjectOpts()
	buildRandom := func(d *forum.Dataset) []attribution.Subject {
		subs := make([]attribution.Subject, 0, d.Len())
		r := rand.New(rand.NewSource(1))
		for i := range d.Aliases {
			a := d.Aliases[i]
			shuffled := append([]forum.Message(nil), a.Messages...)
			r.Shuffle(len(shuffled), func(x, y int) { shuffled[x], shuffled[y] = shuffled[y], shuffled[x] })
			var sb strings.Builder
			words := 0
			for _, m := range shuffled {
				if words >= attribution.DefaultWordBudget {
					break
				}
				sb.WriteString(m.Body)
				sb.WriteByte('\n')
				words += m.WordCount()
			}
			s := attribution.Subject{Name: a.Name, Text: sb.String(), Timestamps: a.Timestamps()}
			subs = append(subs, s)
		}
		return subs
	}
	_ = actOpts
	var longest, random float64
	for i := 0; i < b.N; i++ {
		opts := attribution.DefaultOptions()
		opts.TwoStage = false
		opts.UseActivity = false
		known, probes := benchSubjects(b)
		longest = ablationAccuracy(b, opts, known, probes)

		rKnown := buildRandom(l.Reddit)
		rAE := buildRandom(l.AEReddit)
		names := map[string]bool{}
		for _, s := range rKnown {
			names[s.Name] = true
		}
		var rProbes []attribution.Subject
		for _, s := range rAE {
			if names[s.Name] && len(rProbes) < 40 {
				rProbes = append(rProbes, s)
			}
		}
		random = ablationAccuracy(b, opts, rKnown, rProbes)
	}
	b.ReportMetric(100*longest, "acc-longest-first-%")
	b.ReportMetric(100*random, "acc-random-order-%")
}

// BenchmarkAblationBatchSize sweeps §IV-J's B (DESIGN.md ablation 6).
func BenchmarkAblationBatchSize(b *testing.B) {
	known, probes := benchSubjects(b)
	if len(probes) > 10 {
		probes = probes[:10]
	}
	b.ResetTimer()
	sizes := []int{50, 100, 200}
	accs := make([]float64, len(sizes))
	for i := 0; i < b.N; i++ {
		for si, bs := range sizes {
			bm, err := attribution.NewBatchMatcher(known, attribution.DefaultOptions(), bs)
			if err != nil {
				b.Fatal(err)
			}
			results, err := bm.MatchAll(context.Background(), probes)
			if err != nil {
				b.Fatal(err)
			}
			hits := 0
			for _, r := range results {
				if r.Best.Name == r.Unknown {
					hits++
				}
			}
			accs[si] = float64(hits) / float64(len(probes))
		}
	}
	b.ReportMetric(100*accs[0], "acc-B50-%")
	b.ReportMetric(100*accs[1], "acc-B100-%")
	b.ReportMetric(100*accs[2], "acc-B200-%")
}

// ------------------------------------------- matcher hot-path regression

// The three benchmarks below are the perf-regression trajectory for the
// two-stage matcher hot path. cmd/benchdiff runs exactly these and emits
// BENCH_matcher.json; keep their names and shapes stable so before/after
// numbers stay comparable across PRs.

// BenchmarkRank measures stage-1 candidate ranking (§IV-C) in isolation:
// one unknown scored against the full known set, top-k selected.
func BenchmarkRank(b *testing.B) {
	known, probes := benchSubjects(b)
	m, err := attribution.NewMatcher(known, attribution.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rank(&probes[i%len(probes)], 10)
	}
}

// BenchmarkRescore measures stage-2 (§IV-E): per-candidate re-extraction,
// TF-IDF rebuild over the candidate subset, and cosine rescoring.
func BenchmarkRescore(b *testing.B) {
	known, probes := benchSubjects(b)
	m, err := attribution.NewMatcher(known, attribution.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cands := make([][]attribution.Scored, len(probes))
	for i := range probes {
		cands[i] = m.Rank(&probes[i], 10)
	}
	// One warm pass so ops measure the steady-state per-query cost; the
	// first touch of each candidate populates the matcher's lazy document
	// cache, which is construction cost, not per-query cost.
	for i := range probes {
		m.Rescore(&probes[i], cands[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(probes)
		m.Rescore(&probes[j], cands[j])
	}
}

var (
	matchAllOnce   sync.Once
	matchAllShared *attribution.Matcher
	matchAllProbes []attribution.Subject
)

// benchMatchAll builds (once) the matcher both MatchAll twins share, so
// the instrumented and uninstrumented ops score through the very same
// index memory and their ratio measures the telemetry layer alone, not
// allocator layout luck between two independently built indexes. The
// warm pass populates the lazy per-subject caches so every measured op
// sees the steady state a long-running matcher runs in.
func benchMatchAll(b *testing.B) *attribution.Matcher {
	b.Helper()
	known, probes := benchSubjects(b)
	matchAllOnce.Do(func() {
		m, err := attribution.NewMatcher(known, attribution.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.MatchAll(context.Background(), probes); err != nil {
			b.Fatal(err)
		}
		matchAllShared, matchAllProbes = m, probes
	})
	return matchAllShared
}

// BenchmarkMatchAll measures the full §IV-I algorithm over every probe at
// lab scale (0.03, default options) — the headline end-to-end number.
func BenchmarkMatchAll(b *testing.B) {
	m := benchMatchAll(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.MatchAll(context.Background(), matchAllProbes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatchAllObs is BenchmarkMatchAll with tracing live: every op
// builds a fresh tracer and records the full span forest (match.all,
// per-worker, per-query rank/rescore spans) plus the match metrics.
// cmd/benchdiff -suite obs divides this by BenchmarkMatchAll to guard the
// telemetry overhead bound (< 3%).
func BenchmarkMatchAllObs(b *testing.B) {
	m := benchMatchAll(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := obs.WithTracer(context.Background(), obs.NewTracer())
		if _, err := m.MatchAll(ctx, matchAllProbes); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------- micro-benches

func BenchmarkExtractReductionFeatures(b *testing.B) {
	l := benchLab(b)
	b.ResetTimer()
	text := corpus.Document(&l.Reddit.Aliases[0], 1500)
	cfg := features.ReductionConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		features.Extract(text, cfg)
	}
}

func BenchmarkSparseCosine(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	mk := func() sparse.Vector {
		m := make(map[uint32]float64, 8000)
		for len(m) < 8000 {
			m[uint32(r.Intn(90000))] = r.Float64()
		}
		return sparse.FromMap(m)
	}
	x, y := mk(), mk()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sparse.Cosine(x, y)
	}
}

func BenchmarkMatcherRank(b *testing.B) {
	known, probes := benchSubjects(b)
	m, err := attribution.NewMatcher(known, attribution.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rank(&probes[i%len(probes)], 10)
	}
}

func BenchmarkMatcherFullMatch(b *testing.B) {
	known, probes := benchSubjects(b)
	m, err := attribution.NewMatcher(known, attribution.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(&probes[i%len(probes)])
	}
}

func BenchmarkStandardBaseline(b *testing.B) {
	known, probes := benchSubjects(b)
	std := baselines.NewStandard(known, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		std.Match(&probes[i%len(probes)])
	}
}

func BenchmarkKoppelBaseline(b *testing.B) {
	known, probes := benchSubjects(b)
	cfg := baselines.DefaultKoppelConfig()
	cfg.Iterations = 10 // a tenth of the published setting, still ~10× a cosine pass
	k := baselines.NewKoppel(known, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.VoteAll(context.Background(), probes[:5]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateWorld(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWorld(WorldConfig{Seed: uint64(i + 1), Scale: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolishPipeline(b *testing.B) {
	pipe := NewPipeline()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		world, err := GenerateWorld(WorldConfig{Seed: 9, Scale: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		pipe.Polish(world.Reddit)
	}
}

// BenchmarkCountermeasure measures the §VI defence: how much the
// anonymiser (internal/anonymize) degrades this repository's own attack.
func BenchmarkCountermeasure(b *testing.B) {
	l := benchLab(b)
	known, probes := benchSubjects(b)
	_ = l
	b.ResetTimer()
	var raw, protected float64
	for i := 0; i < b.N; i++ {
		opts := attribution.DefaultOptions()
		raw = ablationAccuracy(b, opts, known, probes)

		anon := anonymize.New(anonymize.DefaultOptions())
		shielded := make([]attribution.Subject, len(probes))
		for j, p := range probes {
			shielded[j] = attribution.Subject{
				Name:       p.Name,
				Text:       anon.Text(p.Text),
				Timestamps: p.Timestamps,
				Activity:   nil, // rescheduling destroys the profile (see anonymize tests)
			}
		}
		protected = ablationAccuracy(b, opts, known, shielded)
	}
	b.ReportMetric(100*raw, "attack-acc-raw-%")
	b.ReportMetric(100*protected, "attack-acc-anonymised-%")
}
