package attribution

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"darklight/internal/activity"
	"darklight/internal/corpus"
	"darklight/internal/features"
	"darklight/internal/forum"
	"darklight/internal/timeutil"
)

// synthAuthor builds two disjoint text halves with a persistent per-author
// vocabulary bias, plus weekday timestamps around a per-author peak hour.
type synthAuthor struct {
	name  string
	known Subject
	probe Subject
}

var sharedVocab = strings.Fields(`
	the a of to and in that it is was for on with as be at by this have from
	or one had not but what all were when we there can an your which their
	time people way water word day part number sound most thing man find
	place year back give line even because turn here show also around form
	small set put end does another well large must big such`)

func makeAuthors(t *testing.T, n, wordsPerHalf int) []synthAuthor {
	t.Helper()
	authors := make([]synthAuthor, n)
	for i := range authors {
		name := fmt.Sprintf("author%02d", i)
		r := rand.New(rand.NewSource(int64(1000 + i)))
		// Persistent style: a preferred subset of the vocabulary plus a
		// couple of private words.
		pref := make([]string, 0, 24)
		for _, j := range r.Perm(len(sharedVocab))[:20] {
			pref = append(pref, sharedVocab[j])
		}
		pref = append(pref, fmt.Sprintf("zq%dx", i), fmt.Sprintf("vk%dy", i))

		gen := func(seed int64, words int) string {
			rr := rand.New(rand.NewSource(seed))
			var b strings.Builder
			for w := 0; w < words; w++ {
				if rr.Float64() < 0.55 {
					b.WriteString(pref[rr.Intn(len(pref))])
				} else {
					b.WriteString(sharedVocab[rr.Intn(len(sharedVocab))])
				}
				if rr.Float64() < 0.12 {
					b.WriteString(",")
				}
				b.WriteByte(' ')
				if w%11 == 10 {
					b.WriteString(". ")
				}
			}
			return b.String()
		}
		peak := 6 + (i*2)%16
		authors[i] = synthAuthor{
			name:  name,
			known: Subject{Name: name, Text: gen(int64(i)*7+1, wordsPerHalf), Timestamps: stamps(peak, 40)},
			probe: Subject{Name: name, Text: gen(int64(i)*7+2, wordsPerHalf), Timestamps: stamps(peak, 40)},
		}
	}
	// Attach activity profiles.
	for i := range authors {
		opts := activity.Options{ExcludeWeekends: true}
		if p, err := activity.Build(authors[i].known.Timestamps, opts); err == nil {
			authors[i].known.Activity = p
		}
		if p, err := activity.Build(authors[i].probe.Timestamps, opts); err == nil {
			authors[i].probe.Activity = p
		}
	}
	return authors
}

func stamps(hour, n int) []time.Time {
	out := make([]time.Time, 0, n)
	day := time.Date(2017, 4, 3, 0, 0, 0, 0, time.UTC)
	for len(out) < n {
		if !timeutil.IsWeekend(day) {
			out = append(out, time.Date(day.Year(), day.Month(), day.Day(), hour, 30, 0, 0, time.UTC))
		}
		day = day.AddDate(0, 0, 1)
	}
	return out
}

func testOptions() Options {
	o := DefaultOptions()
	o.Workers = 2
	return o
}

func split(authors []synthAuthor) (known, probes []Subject) {
	for _, a := range authors {
		known = append(known, a.known)
		probes = append(probes, a.probe)
	}
	return known, probes
}

func TestMatcherSelfAttribution(t *testing.T) {
	authors := makeAuthors(t, 12, 400)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumKnown() != 12 {
		t.Fatalf("NumKnown = %d", m.NumKnown())
	}
	hits := 0
	for i := range probes {
		res := m.Match(&probes[i])
		if res.Unknown != probes[i].Name {
			t.Errorf("result mislabelled: %q", res.Unknown)
		}
		if len(res.Candidates) != 10 {
			t.Errorf("want k=10 candidates, got %d", len(res.Candidates))
		}
		if res.Best.Name == probes[i].Name {
			hits++
		}
	}
	if hits < 10 {
		t.Errorf("self-attribution hits = %d of 12", hits)
	}
}

func TestRankWithWeights(t *testing.T) {
	authors := makeAuthors(t, 8, 300)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	textOnly := m.RankWith(&probes[0], 3, Weights{Freq: 0.3, Activity: 0})
	withAct := m.RankWith(&probes[0], 3, Weights{Freq: 0.3, Activity: 0.7})
	if len(textOnly) != 3 || len(withAct) != 3 {
		t.Fatal("rank sizes wrong")
	}
	// Scores must differ when the activity block is toggled (profiles are
	// author-specific here).
	if textOnly[0].Score == withAct[0].Score {
		t.Error("activity weighting has no effect on scores")
	}
	for _, s := range append(textOnly, withAct...) {
		if s.Score < -1e-9 || s.Score > 1+1e-9 {
			t.Errorf("score %v outside [0,1]", s.Score)
		}
	}
}

func TestRescoreOrdersCandidates(t *testing.T) {
	authors := makeAuthors(t, 10, 300)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	cands := m.Rank(&probes[2], 5)
	rescored := m.Rescore(&probes[2], cands)
	if len(rescored) != 5 {
		t.Fatalf("rescored %d", len(rescored))
	}
	for i := 1; i < len(rescored); i++ {
		if rescored[i].Score > rescored[i-1].Score {
			t.Error("rescored candidates must be sorted descending")
		}
	}
}

func TestThresholdAcceptance(t *testing.T) {
	authors := makeAuthors(t, 6, 300)
	known, probes := split(authors)

	opts := testOptions()
	opts.Threshold = 2.0 // unattainable for cosine
	m, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res := m.Match(&probes[0]); res.Accepted {
		t.Error("nothing can clear threshold 2.0")
	}

	opts.Threshold = -1
	m2, _ := NewMatcher(known, opts)
	if res := m2.Match(&probes[0]); !res.Accepted {
		t.Error("threshold -1 must accept everything")
	}
}

func TestMatchAllAlignsAndCancels(t *testing.T) {
	authors := makeAuthors(t, 8, 250)
	known, probes := split(authors)
	m, err := NewMatcher(known, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	results, err := m.MatchAll(context.Background(), probes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probes {
		if results[i].Unknown != probes[i].Name {
			t.Fatal("results must align positionally with input")
		}
	}
	// Cancelled context: must return promptly with ctx error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.MatchAll(ctx, probes)
	if err == nil {
		t.Error("cancelled MatchAll must report the context error")
	}
}

func TestSingleStageOption(t *testing.T) {
	authors := makeAuthors(t, 6, 250)
	known, probes := split(authors)
	opts := testOptions()
	opts.TwoStage = false
	m, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := m.Match(&probes[0])
	if len(res.Rescored) != len(res.Candidates) {
		t.Fatal("single-stage must reuse candidates")
	}
	for i := range res.Candidates {
		if res.Rescored[i] != res.Candidates[i] {
			t.Error("single-stage scores must equal stage-1 scores")
		}
	}
}

func TestEmptyKnownSet(t *testing.T) {
	m, err := NewMatcher(nil, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	probe := Subject{Name: "x", Text: "some text here"}
	res := m.Match(&probe)
	if res.Accepted || len(res.Candidates) != 0 {
		t.Error("empty known set must match nothing")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	opts := testOptions()
	opts.Reduction.WordMin = 0
	if _, err := NewMatcher(nil, opts); err == nil {
		t.Error("invalid reduction config must be rejected")
	}
	opts = testOptions()
	opts.Final.CharMin = 9
	opts.Final.CharMax = 1
	if _, err := NewMatcher(nil, opts); err == nil {
		t.Error("invalid final config must be rejected")
	}
}

func TestBatchMatcherAgreesWithDirect(t *testing.T) {
	authors := makeAuthors(t, 30, 250)
	known, probes := split(authors)
	probes = probes[:8]

	opts := testOptions()
	direct, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := NewBatchMatcher(known, opts, 12)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	batched, err := bm.MatchAll(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range probes {
		d := direct.Match(&probes[i])
		if batched[i].Best.Name == d.Best.Name {
			agree++
		}
	}
	if agree < 6 {
		t.Errorf("batched agrees with direct on %d of 8", agree)
	}
}

func TestBatchMatcherRejectsTinyB(t *testing.T) {
	if _, err := NewBatchMatcher(nil, testOptions(), 5); err == nil {
		t.Error("B < k must be rejected")
	}
}

func TestBuildSubjects(t *testing.T) {
	d := forum.NewDataset("T", forum.PlatformReddit)
	a := forum.Alias{Name: "u"}
	day := time.Date(2017, 6, 5, 10, 0, 0, 0, time.UTC)
	for i := 0; i < 40; i++ {
		for timeutil.IsWeekend(day) {
			day = day.AddDate(0, 0, 1)
		}
		a.Messages = append(a.Messages, forum.Message{
			ID: fmt.Sprint(i), Author: "u",
			Body:     strings.Repeat("word ", 60),
			PostedAt: day,
		})
		day = day.AddDate(0, 0, 1)
	}
	d.Add(a)
	subs, err := BuildSubjects(d, SubjectOptions{WordBudget: 100, WithActivity: true, Activity: activity.Options{ExcludeWeekends: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatal("subject missing")
	}
	if got := len(strings.Fields(subs[0].Text)); got != 100 {
		t.Errorf("budgeted doc = %d words", got)
	}
	if subs[0].Activity == nil {
		t.Error("activity profile missing")
	}
	// Word budget must match corpus.Document.
	if subs[0].Text != corpus.Document(&d.Aliases[0], 100) {
		t.Error("subject text must be the corpus document")
	}
	// Insufficient timestamps → nil profile, no error.
	d2 := forum.NewDataset("T2", forum.PlatformReddit)
	d2.Add(forum.Alias{Name: "few", Messages: a.Messages[:5]})
	subs2, err := BuildSubjects(d2, SubjectOptions{WithActivity: true})
	if err != nil {
		t.Fatal(err)
	}
	if subs2[0].Activity != nil {
		t.Error("five timestamps cannot build a profile")
	}
}

func TestVectorizeConsistentWithSimilarity(t *testing.T) {
	// similarity(u, v) with weights must equal 1 for identical subjects.
	// Note the vocabulary needs at least two documents: with a single doc
	// every gram has df = N and IDF = ln((1+N)/(1+df)) = 0, zeroing the
	// whole gram block.
	s := Subject{Name: "x", Text: "alpha beta gamma delta epsilon zeta eta theta!"}
	cfg := features.ReductionConfig()
	vb := features.NewVocabBuilder(cfg)
	vb.Add(features.Extract(s.Text, cfg))
	vb.Add(features.Extract("totally different filler words go here instead.", cfg))
	vocab := vb.Build()
	b := buildBlocks(&s, vocab, cfg)
	w := Weights{Freq: 0.3, Activity: 0.7}
	if got := similarity(&b, &b, w); got < 0.999 || got > 1.001 {
		t.Errorf("self similarity = %v", got)
	}
}
