package detrand_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "internal/synth", "other/free")
}
