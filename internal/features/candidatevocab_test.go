package features

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomDoc builds a synthetic document from a small gram-id pool so that
// cross-document overlaps and frequency ties are common — the cases where
// selection order and tie-breaking could drift between implementations.
func randomDoc(rng *rand.Rand) *Doc {
	d := &Doc{
		WordGrams: make(map[GramID]int),
		CharGrams: make(map[GramID]int),
	}
	for i, n := 0, rng.Intn(40); i < n; i++ {
		g := GramID(rng.Intn(60))
		c := 1 + rng.Intn(4)
		d.WordGrams[g] += c
		d.WordTotal += c
	}
	for i, n := 0, rng.Intn(80); i < n; i++ {
		g := GramID(1000 + rng.Intn(120))
		c := 1 + rng.Intn(3)
		d.CharGrams[g] += c
		d.CharTotal += c
	}
	for i := range d.Freq {
		if rng.Intn(4) == 0 {
			d.Freq[i] = rng.Float64()
		}
	}
	d.TotalChars = 100 + rng.Intn(400)
	return d
}

// TestCandidateVocabMatchesVocabBuilder pins the fast stage-2 path to the
// general map-based path: same gram selection, same index assignment, and
// bit-identical vectors, across gram budgets that keep everything, truncate
// hard, or keep nothing.
func TestCandidateVocabMatchesVocabBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cfg := FinalConfig()
		switch trial % 4 {
		case 0: // generous budgets: nothing truncated
			cfg.MaxWordGrams, cfg.MaxCharGrams = 10000, 10000
		case 1: // tight budgets: heavy truncation through the tie region
			cfg.MaxWordGrams, cfg.MaxCharGrams = 1+rng.Intn(10), 1+rng.Intn(20)
		case 2: // zero budgets
			cfg.MaxWordGrams, cfg.MaxCharGrams = 0, 0
		case 3: // negative budgets mean unlimited, like topN
			cfg.MaxWordGrams, cfg.MaxCharGrams = -1, -1
		}

		docs := make([]*Doc, 1+rng.Intn(12))
		sorted := make([]*SortedDoc, len(docs))
		vb := NewVocabBuilder(cfg)
		for i := range docs {
			docs[i] = randomDoc(rng)
			sorted[i] = docs[i].Sorted()
			vb.Add(docs[i])
		}
		ref := vb.Build()
		cv := BuildCandidateVocab(cfg, sorted)

		if cv.NumWordGrams() != ref.NumWordGrams() || cv.NumCharGrams() != ref.NumCharGrams() {
			t.Fatalf("trial %d: vocab sizes differ: fast %d/%d vs ref %d/%d",
				trial, cv.NumWordGrams(), cv.NumCharGrams(), ref.NumWordGrams(), ref.NumCharGrams())
		}
		// Vectorize both the corpus docs and an unseen probe document.
		probe := randomDoc(rng)
		for j, d := range append(docs, probe) {
			want := ref.VectorizeGrams(d)
			got := cv.VectorizeGrams(d.Sorted())
			if !reflect.DeepEqual(fmt.Sprint(want), fmt.Sprint(got)) {
				t.Fatalf("trial %d doc %d: vectors differ\nfast: %v\nref:  %v", trial, j, got, want)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d doc %d: vectors not bit-identical", trial, j)
			}
		}
	}
}

// TestCandidateVocabEmpty covers the zero-candidate case Rescore can hit.
func TestCandidateVocabEmpty(t *testing.T) {
	cv := BuildCandidateVocab(FinalConfig(), nil)
	if cv.NumWordGrams() != 0 || cv.NumCharGrams() != 0 {
		t.Fatalf("empty corpus produced a non-empty vocabulary")
	}
	rng := rand.New(rand.NewSource(1))
	vec := cv.VectorizeGrams(randomDoc(rng).Sorted())
	if vec.Len() != 0 {
		t.Fatalf("empty vocabulary vectorized to %d entries", vec.Len())
	}
}
