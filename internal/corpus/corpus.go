// Package corpus implements the dataset refinement and ground-truth
// generation of §IV-D of the paper: filtering aliases by word and timestamp
// budgets, splitting prolific users into (original, alter-ego) pairs, and
// selecting each alias's analysis text longest-message-first up to a word
// budget.
package corpus

import (
	"math/rand"
	"strings"
	"time"

	"darklight/internal/activity"
	"darklight/internal/forum"
	"darklight/internal/timeutil"
)

// Paper thresholds (§IV-D).
const (
	// MinWords is the per-alias word budget for the refined datasets.
	MinWords = 1500
	// MinTimestamps is the usable-timestamp minimum (activity profile).
	MinTimestamps = 30
	// AlterEgoMinWords is the threshold to qualify as an alter-ego source.
	AlterEgoMinWords = 3000
	// AlterEgoMinTimestamps is the timestamp threshold for splitting.
	AlterEgoMinTimestamps = 60
)

// RefineOptions configure Refine.
type RefineOptions struct {
	// MinWords defaults to MinWords when 0.
	MinWords int
	// MinTimestamps defaults to MinTimestamps when 0.
	MinTimestamps int
	// Activity controls which timestamps count as usable (weekends and
	// holidays excluded, forum-local times aligned to UTC).
	Activity activity.Options
}

func (o RefineOptions) withDefaults() RefineOptions {
	if o.MinWords == 0 {
		o.MinWords = MinWords
	}
	if o.MinTimestamps == 0 {
		o.MinTimestamps = MinTimestamps
	}
	return o
}

// UsableTimestamps counts the alias's timestamps that survive weekend and
// holiday exclusion after UTC alignment.
func UsableTimestamps(a *forum.Alias, opts activity.Options) int {
	n := 0
	for i := range a.Messages {
		utc := timeutil.AlignUTC(a.Messages[i].PostedAt, opts.ForumUTCOffsetMinutes)
		if opts.ExcludeWeekends && timeutil.IsWeekend(utc) {
			continue
		}
		if opts.Holidays.Contains(utc) {
			continue
		}
		n++
	}
	return n
}

// Refine returns the aliases with at least MinWords words and
// MinTimestamps usable timestamps — the paper's refined datasets
// (Table IV: Reddit 11,679; TMG 422; DM 178).
func Refine(d *forum.Dataset, opts RefineOptions) *forum.Dataset {
	opts = opts.withDefaults()
	return d.Filter(func(a *forum.Alias) bool {
		return a.TotalWords() >= opts.MinWords &&
			UsableTimestamps(a, opts.Activity) >= opts.MinTimestamps
	})
}

// AlterEgoOptions configure SplitAlterEgos.
type AlterEgoOptions struct {
	// MinWords defaults to AlterEgoMinWords.
	MinWords int
	// MinTimestamps defaults to AlterEgoMinTimestamps.
	MinTimestamps int
	// Activity as in RefineOptions.
	Activity activity.Options
	// Seed drives the random split.
	Seed int64
}

func (o AlterEgoOptions) withDefaults() AlterEgoOptions {
	if o.MinWords == 0 {
		o.MinWords = AlterEgoMinWords
	}
	if o.MinTimestamps == 0 {
		o.MinTimestamps = AlterEgoMinTimestamps
	}
	return o
}

// SplitAlterEgos builds the evaluation ground truth of §IV-D. For every
// alias with enough words and timestamps, its messages are randomly divided
// into two halves: the original keeps one half, the alter-ego (same name,
// separate dataset named "AE_<name>") gets the other. Message sets are
// disjoint; timestamps are evenly divided because the messages carrying
// them are split alternately after shuffling. Aliases below the threshold
// stay in the main dataset untouched and have no alter-ego.
//
// An alter-ego pair is "the same person" by construction: a predicted match
// is correct iff the two alias names are equal.
func SplitAlterEgos(d *forum.Dataset, opts AlterEgoOptions) (main, ae *forum.Dataset) {
	opts = opts.withDefaults()
	r := rand.New(rand.NewSource(opts.Seed))
	main = forum.NewDataset(d.Name, d.Platform)
	ae = forum.NewDataset("AE_"+d.Name, d.Platform)
	for i := range d.Aliases {
		a := d.Aliases[i]
		if a.TotalWords() < opts.MinWords || UsableTimestamps(&a, opts.Activity) < opts.MinTimestamps {
			main.Aliases = append(main.Aliases, a)
			continue
		}
		half1, half2 := splitMessages(r, a.Messages)
		orig := forum.Alias{Name: a.Name, Platform: a.Platform, Messages: half1}
		alter := forum.Alias{Name: a.Name, Platform: a.Platform, Messages: half2}
		main.Aliases = append(main.Aliases, orig)
		ae.Aliases = append(ae.Aliases, alter)
	}
	return main, ae
}

// splitMessages shuffles and deals messages alternately, so both message
// counts and timestamp counts split evenly at random.
func splitMessages(r *rand.Rand, msgs []forum.Message) (a, b []forum.Message) {
	idx := r.Perm(len(msgs))
	a = make([]forum.Message, 0, (len(msgs)+1)/2)
	b = make([]forum.Message, 0, len(msgs)/2)
	for k, j := range idx {
		if k%2 == 0 {
			a = append(a, msgs[j])
		} else {
			b = append(b, msgs[j])
		}
	}
	return a, b
}

// Document returns the alias's analysis text: messages concatenated
// longest-first until the word budget is reached, the final message
// truncated at the budget (§IV-D: "we sort the messages by length and
// select the messages from the longest to the shortest until we reach the
// limit of 1,500 words"). maxWords <= 0 returns all text.
func Document(a *forum.Alias, maxWords int) string {
	if maxWords <= 0 {
		return a.Text()
	}
	clone := forum.Alias{Name: a.Name, Platform: a.Platform,
		Messages: append([]forum.Message(nil), a.Messages...)}
	clone.SortMessagesByLengthDesc()
	var b strings.Builder
	words := 0
	for i := range clone.Messages {
		if words >= maxWords {
			break
		}
		fields := strings.Fields(clone.Messages[i].Body)
		take := len(fields)
		if words+take > maxWords {
			take = maxWords - words
		}
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(strings.Join(fields[:take], " "))
		words += take
	}
	return b.String()
}

// Timestamps returns all posting times of the alias (the activity profile
// uses every usable timestamp, not only those of selected messages).
func Timestamps(a *forum.Alias) []time.Time { return a.Timestamps() }

// Sample returns up to n aliases drawn without replacement, deterministic
// in seed. The dataset is not modified.
func Sample(d *forum.Dataset, n int, seed int64) *forum.Dataset {
	out := forum.NewDataset(d.Name, d.Platform)
	if n >= d.Len() {
		out.Aliases = append(out.Aliases, d.Aliases...)
		return out
	}
	r := rand.New(rand.NewSource(seed))
	idx := r.Perm(d.Len())[:n]
	for _, i := range idx {
		out.Aliases = append(out.Aliases, d.Aliases[i])
	}
	return out
}

// WordCountCDF returns the empirical CDF of total words per alias evaluated
// at the given thresholds — the data behind Fig. 1 of the paper.
func WordCountCDF(d *forum.Dataset, thresholds []int) []float64 {
	if d.Len() == 0 {
		return make([]float64, len(thresholds))
	}
	counts := make([]int, d.Len())
	for i := range d.Aliases {
		counts[i] = d.Aliases[i].TotalWords()
	}
	out := make([]float64, len(thresholds))
	for ti, t := range thresholds {
		n := 0
		for _, c := range counts {
			if c <= t {
				n++
			}
		}
		out[ti] = float64(n) / float64(len(counts))
	}
	return out
}
