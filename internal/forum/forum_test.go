package forum

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func msg(id, author, body string, t time.Time) Message {
	return Message{ID: id, Author: author, Body: body, PostedAt: t}
}

var t0 = time.Date(2017, 3, 1, 12, 0, 0, 0, time.UTC)

func TestMessageWordCount(t *testing.T) {
	tests := []struct {
		name string
		body string
		want int
	}{
		{"empty", "", 0},
		{"single", "hello", 1},
		{"multiple", "one two three", 3},
		{"extra whitespace", "  one\t two \n three  ", 3},
		{"punctuation attached", "well, ok then.", 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := Message{Body: tt.body}
			if got := m.WordCount(); got != tt.want {
				t.Errorf("WordCount(%q) = %d, want %d", tt.body, got, tt.want)
			}
		})
	}
}

func TestMessageDistinctWordRatio(t *testing.T) {
	tests := []struct {
		name string
		body string
		want float64
	}{
		{"empty", "", 0},
		{"all distinct", "a b c d", 1},
		{"half", "a a b b", 0.5},
		{"case folded", "Spam spam SPAM spam", 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := Message{Body: tt.body}
			if got := m.DistinctWordRatio(); got != tt.want {
				t.Errorf("DistinctWordRatio(%q) = %v, want %v", tt.body, got, tt.want)
			}
		})
	}
}

func TestAliasIsLikelyBot(t *testing.T) {
	tests := []struct {
		name string
		want bool
	}{
		{"tipbot", true},
		{"bot_master", true},
		{"AutoModBot", true},
		{"tipbot3000", true},
		{"botanica", true}, // prefix rule matches; acceptable false positive by design
		{"alice", false},
		{"robotics_fan", false},
		{"abbot2", true}, // suffix after digit strip
	}
	for _, tt := range tests {
		a := Alias{Name: tt.name}
		if got := a.IsLikelyBot(); got != tt.want {
			t.Errorf("IsLikelyBot(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestAliasTotalWordsAndText(t *testing.T) {
	a := Alias{Messages: []Message{
		msg("1", "x", "one two", t0),
		msg("2", "x", "three", t0.Add(time.Hour)),
	}}
	if got := a.TotalWords(); got != 3 {
		t.Errorf("TotalWords = %d, want 3", got)
	}
	if got := a.Text(); got != "one two\nthree" {
		t.Errorf("Text = %q", got)
	}
	ts := a.Timestamps()
	if len(ts) != 2 || !ts[0].Equal(t0) {
		t.Errorf("Timestamps = %v", ts)
	}
}

func TestSortMessagesByLengthDesc(t *testing.T) {
	a := Alias{Messages: []Message{
		msg("b", "x", "one two", t0),
		msg("a", "x", "one two", t0),
		msg("c", "x", "one two three four", t0),
		msg("d", "x", "one", t0),
	}}
	a.SortMessagesByLengthDesc()
	gotIDs := []string{}
	for _, m := range a.Messages {
		gotIDs = append(gotIDs, m.ID)
	}
	want := []string{"c", "a", "b", "d"} // longest first, ties by ID
	for i := range want {
		if gotIDs[i] != want[i] {
			t.Fatalf("order = %v, want %v", gotIDs, want)
		}
	}
}

func TestDatasetBasics(t *testing.T) {
	d := NewDataset("Test", PlatformReddit)
	d.Add(Alias{Name: "alice", Messages: []Message{msg("1", "alice", "hi there friend", t0)}})
	d.Add(Alias{Name: "bob", Messages: []Message{msg("2", "bob", "yo", t0), msg("3", "bob", "hello again", t0)}})

	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := d.TotalMessages(); got != 3 {
		t.Errorf("TotalMessages = %d", got)
	}
	if got := d.TotalWords(); got != 6 {
		t.Errorf("TotalWords = %d", got)
	}
	if d.Aliases[0].Platform != PlatformReddit {
		t.Error("Add should force the dataset platform")
	}
	a, err := d.Find("bob")
	if err != nil || a.Name != "bob" {
		t.Errorf("Find(bob) = %v, %v", a, err)
	}
	if _, err := d.Find("carol"); err == nil {
		t.Error("Find(carol) should fail")
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "alice" {
		t.Errorf("Names = %v", names)
	}
}

func TestDatasetFilter(t *testing.T) {
	d := NewDataset("Test", PlatformReddit)
	d.Add(Alias{Name: "keep", Messages: []Message{msg("1", "keep", "a b c", t0)}})
	d.Add(Alias{Name: "drop"})
	out := d.Filter(func(a *Alias) bool { return len(a.Messages) > 0 })
	if out.Len() != 1 || out.Aliases[0].Name != "keep" {
		t.Errorf("Filter kept %v", out.Names())
	}
	if d.Len() != 2 {
		t.Error("Filter must not mutate the original")
	}
}

func TestMergeRenamesConsistently(t *testing.T) {
	a := NewDataset("TMG", PlatformTheMajesticGarden)
	a.Add(Alias{Name: "x"})
	b := NewDataset("DM", PlatformDreamMarket)
	b.Add(Alias{Name: "x"})
	merged := Merge("DarkWeb", PlatformSynthetic, a, b)
	if merged.Len() != 2 {
		t.Fatalf("Len = %d", merged.Len())
	}
	if merged.Aliases[0].Name != "x@tmg" || merged.Aliases[1].Name != "x@dm" {
		t.Errorf("names = %v", merged.Names())
	}
	// Merging a subset must produce the same names for the same aliases.
	sub := Merge("Sub", PlatformSynthetic, b)
	if sub.Aliases[0].Name != "x@dm" {
		t.Errorf("subset merge name = %q", sub.Aliases[0].Name)
	}
}

func TestAnonymize(t *testing.T) {
	d := NewDataset("Test", PlatformDreamMarket)
	d.Add(Alias{Name: "secret_vendor", Messages: []Message{msg("1", "secret_vendor", "hello", t0)}})
	anon, mapping := d.Anonymize()
	if anon.Aliases[0].Name == "secret_vendor" {
		t.Error("nickname not hashed")
	}
	if anon.Aliases[0].Messages[0].Author == "secret_vendor" {
		t.Error("message author not hashed")
	}
	if mapping[anon.Aliases[0].Name] != "secret_vendor" {
		t.Error("mapping must invert the hash")
	}
	if d.Aliases[0].Messages[0].Author != "secret_vendor" {
		t.Error("original dataset must be untouched")
	}
	if HashNickname("a") == HashNickname("b") {
		t.Error("distinct names must hash differently")
	}
}

func TestPlatformRoundtrip(t *testing.T) {
	for _, p := range []Platform{PlatformReddit, PlatformTheMajesticGarden, PlatformDreamMarket, PlatformSynthetic, PlatformUnknown} {
		got, err := ParsePlatform(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePlatform(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePlatform("nonsense"); err == nil {
		t.Error("ParsePlatform(nonsense) should fail")
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	d := NewDataset("Test", PlatformDreamMarket)
	d.Add(Alias{Name: "zed", Messages: []Message{
		msg("2", "zed", "second message with\nnewline", t0.Add(time.Minute)),
	}})
	d.Add(Alias{Name: "amy", Messages: []Message{
		msg("1", "amy", `quotes " and unicode ✓`, t0),
	}})

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, "Test", PlatformDreamMarket)
	if err != nil {
		t.Fatal(err)
	}
	// Readback sorts aliases by name.
	if got.Len() != 2 || got.Aliases[0].Name != "amy" || got.Aliases[1].Name != "zed" {
		t.Fatalf("roundtrip names = %v", got.Names())
	}
	if got.Aliases[0].Messages[0].Body != `quotes " and unicode ✓` {
		t.Errorf("body = %q", got.Aliases[0].Messages[0].Body)
	}
	if !got.Aliases[1].Messages[0].PostedAt.Equal(t0.Add(time.Minute)) {
		t.Error("timestamp lost")
	}
}

func TestReadJSONLErrors(t *testing.T) {
	tests := []struct {
		name  string
		input string
	}{
		{"bad json", "{not json}\n"},
		{"missing author", `{"id":"1","body":"x"}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSONL(strings.NewReader(tt.input), "x", PlatformReddit); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// Property: JSONL round-trips any dataset whose messages have non-empty
// authors.
func TestJSONLRoundtripProperty(t *testing.T) {
	f := func(bodies []string) bool {
		d := NewDataset("P", PlatformReddit)
		for i, body := range bodies {
			author := "user" + string(rune('a'+i%5))
			d.Add(Alias{Name: author, Messages: []Message{
				{ID: itoa(i), Author: author, Body: body, PostedAt: t0.Add(time.Duration(i) * time.Minute)},
			}})
		}
		var buf bytes.Buffer
		if err := WriteJSONL(&buf, d); err != nil {
			return false
		}
		got, err := ReadJSONL(&buf, "P", PlatformReddit)
		if err != nil {
			return false
		}
		return got.TotalMessages() == d.TotalMessages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	return string(rune('0'+i%10)) + string(rune('0'+(i/10)%10))
}
