package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Exposition is deterministic end to end: families sort by name, series
// sort by their label-value tuple, label keys keep registration order, and
// histogram buckets keep their fixed declared layout. Two registries fed
// the same events expose byte-identical text.

// Bucket is one cumulative histogram bucket in a snapshot. LE is the
// upper bound rendered Prometheus-style ("0.5", "+Inf") so the JSON form
// can carry the infinity bucket.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// SeriesSnapshot is one labelled series. Value carries the counter or
// gauge value (for histograms: the sum of observations); Count and
// Buckets are histogram-only.
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   int64             `json:"count,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
}

// FamilySnapshot is one metric family with all its series.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot captures every family, deterministically ordered. Registered
// collectors run first, so pull-style gauges are fresh in the output.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.collect()
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.typ.String(), Help: f.help}
		for _, s := range sortedSeries(f) {
			ss := SeriesSnapshot{}
			if len(f.labels) > 0 {
				ss.Labels = make(map[string]string, len(f.labels))
				for i, k := range f.labels {
					ss.Labels[k] = s.labelVals[i]
				}
			}
			switch f.typ {
			case counterType:
				ss.Value = float64(s.counter.Value())
			case gaugeType:
				ss.Value = s.gauge.Value()
			case histogramType:
				ss.Value = s.hist.Sum()
				cum := int64(0)
				for i := range s.hist.counts {
					cum += s.hist.counts[i].Load()
					le := "+Inf"
					if i < len(f.bounds) {
						le = formatFloat(f.bounds[i])
					}
					ss.Buckets = append(ss.Buckets, Bucket{LE: le, Count: cum})
				}
				ss.Count = cum
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// sortedSeries returns a family's series ordered by label-value tuple.
func sortedSeries(f *family) []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labelVals, out[j].labelVals
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fam := range r.Snapshot() {
		if fam.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.Name, fam.Type); err != nil {
			return err
		}
		for _, s := range fam.Series {
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam FamilySnapshot, s SeriesSnapshot) error {
	if fam.Type != "histogram" {
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.Name, renderLabels(s.Labels, "", ""), formatFloat(s.Value))
		return err
	}
	for _, b := range s.Buckets {
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam.Name, renderLabels(s.Labels, "le", b.LE), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.Name, renderLabels(s.Labels, "", ""), formatFloat(s.Value)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.Name, renderLabels(s.Labels, "", ""), s.Count)
	return err
}

// renderLabels renders a sorted {k="v",...} block, optionally appending
// one extra pair (the histogram "le" bound).
func renderLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at /metrics in Prometheus text format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		//lint:ignore errdrop a failed write means the scraper hung up; there is no one left to report to
		r.WritePrometheus(w)
	})
}

// AttachDebug mounts the observability surfaces on an existing mux:
// /metrics (Prometheus text), /debug/vars (expvar JSON), and the
// net/http/pprof endpoints under /debug/pprof/.
func AttachDebug(mux *http.ServeMux, reg *Registry) {
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts the debug server on addr in a background goroutine and
// returns the bound address (useful with ":0") plus a stop function
// that shuts the server down and waits for the goroutine to exit. The
// long-running commands expose this behind their -obs.addr flag and
// defer stop so the serving goroutine cannot outlive main. stop is
// idempotent. Serve errors after startup are reported through logf
// when provided.
func Serve(addr string, reg *Registry, logf func(format string, args ...any)) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	AttachDebug(mux, reg)
	srv := &http.Server{Handler: mux}
	done := make(chan struct{})
	//lint:ignore goleak the stop signal is out-of-band: stop() calls srv.Close, which unblocks srv.Serve and closes done
	go func() {
		defer close(done)
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && logf != nil {
			logf("obs: debug server: %v", err)
		}
	}()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			//lint:ignore errdrop closing a listener the server owns can only fail if already closed
			srv.Close()
			<-done
		})
	}
	return ln.Addr().String(), stop, nil
}

// WriteJSON renders the snapshot as indented JSON (the manifest embeds the
// same structure via Snapshot).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
