package eval

import (
	"math"
	"testing"
)

func same(u, c string) bool { return u == c }

func TestPRCurveHandComputed(t *testing.T) {
	// Scores descending: correct, correct, wrong, correct.
	preds := []Prediction{
		{"a", "a", 0.9},
		{"b", "b", 0.8},
		{"c", "x", 0.7},
		{"d", "d", 0.6},
	}
	c := PRCurve(preds, same, 4)
	if len(c.Points) != 4 {
		t.Fatalf("points = %d", len(c.Points))
	}
	// After 2 predictions: P=1, R=0.5. After 3: P=2/3, R=0.5. After 4: P=3/4, R=3/4.
	want := []PRPoint{
		{0.9, 1, 0.25},
		{0.8, 1, 0.5},
		{0.7, 2.0 / 3.0, 0.5},
		{0.6, 0.75, 0.75},
	}
	for i, w := range want {
		g := c.Points[i]
		if g.Threshold != w.Threshold || math.Abs(g.Precision-w.Precision) > 1e-12 || math.Abs(g.Recall-w.Recall) > 1e-12 {
			t.Errorf("point %d = %+v, want %+v", i, g, w)
		}
	}
}

func TestPRCurveTiesCollapse(t *testing.T) {
	preds := []Prediction{
		{"a", "a", 0.5},
		{"b", "x", 0.5},
	}
	c := PRCurve(preds, same, 2)
	if len(c.Points) != 1 {
		t.Fatalf("tied scores must collapse to one point, got %d", len(c.Points))
	}
	if c.Points[0].Precision != 0.5 || c.Points[0].Recall != 0.5 {
		t.Errorf("point = %+v", c.Points[0])
	}
}

func TestAtThreshold(t *testing.T) {
	preds := []Prediction{
		{"a", "a", 0.9},
		{"b", "x", 0.5},
	}
	c := PRCurve(preds, same, 2)
	p, r := c.AtThreshold(0.7)
	if p != 1 || r != 0.5 {
		t.Errorf("AtThreshold(0.7) = %v, %v", p, r)
	}
	p, r = c.AtThreshold(0.4)
	if p != 0.5 || r != 0.5 {
		t.Errorf("AtThreshold(0.4) = %v, %v", p, r)
	}
	p, r = c.AtThreshold(0.95)
	if p != 0 || r != 0 {
		t.Errorf("AtThreshold above max = %v, %v", p, r)
	}
}

func TestThresholdForRecall(t *testing.T) {
	preds := []Prediction{
		{"a", "a", 0.9},
		{"b", "b", 0.8},
		{"c", "c", 0.7},
		{"d", "x", 0.6},
	}
	c := PRCurve(preds, same, 4)
	pt, ok := c.ThresholdForRecall(0.5)
	if !ok || pt.Threshold != 0.8 {
		t.Errorf("ThresholdForRecall(0.5) = %+v, %v", pt, ok)
	}
	if _, ok := c.ThresholdForRecall(0.9); ok {
		t.Error("recall 0.9 unreachable (only 3 of 4 correct)")
	}
}

func TestAUCPerfectAndZero(t *testing.T) {
	perfect := PRCurve([]Prediction{
		{"a", "a", 0.9}, {"b", "b", 0.8}, {"c", "c", 0.7},
	}, same, 3)
	if got := perfect.AUC(); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect AUC = %v", got)
	}
	hopeless := PRCurve([]Prediction{
		{"a", "x", 0.9}, {"b", "y", 0.8},
	}, same, 2)
	if got := hopeless.AUC(); got != 0 {
		t.Errorf("hopeless AUC = %v", got)
	}
	var empty Curve
	if empty.AUC() != 0 {
		t.Error("empty curve AUC must be 0")
	}
}

func TestBestF1(t *testing.T) {
	preds := []Prediction{
		{"a", "a", 0.9},
		{"b", "b", 0.8},
		{"c", "x", 0.7},
	}
	c := PRCurve(preds, same, 2)
	best := c.BestF1()
	if best.Threshold != 0.8 {
		t.Errorf("BestF1 at %v, want 0.8", best.Threshold)
	}
}

func TestAccuracyAtK(t *testing.T) {
	rankings := []Ranking{
		{Unknown: "a", Candidates: []string{"a", "b", "c"}},
		{Unknown: "b", Candidates: []string{"x", "b", "c"}},
		{Unknown: "c", Candidates: []string{"x", "y", "z"}},
	}
	if got := AccuracyAtK(rankings, same, 1); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("acc@1 = %v", got)
	}
	if got := AccuracyAtK(rankings, same, 2); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("acc@2 = %v", got)
	}
	if got := AccuracyAtK(rankings, same, 10); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("acc@10 = %v (k beyond list length)", got)
	}
	if got := AccuracyAtK(nil, same, 1); got != 0 {
		t.Error("empty rankings accuracy must be 0")
	}
}

func TestMeanReciprocalRank(t *testing.T) {
	rankings := []Ranking{
		{Unknown: "a", Candidates: []string{"a"}},      // rr 1
		{Unknown: "b", Candidates: []string{"x", "b"}}, // rr 1/2
		{Unknown: "c", Candidates: []string{"x", "y"}}, // rr 0
	}
	want := (1.0 + 0.5 + 0) / 3
	if got := MeanReciprocalRank(rankings, same); math.Abs(got-want) > 1e-12 {
		t.Errorf("MRR = %v, want %v", got, want)
	}
}

func TestF1(t *testing.T) {
	if got := F1(1, 1); got != 1 {
		t.Errorf("F1(1,1) = %v", got)
	}
	if got := F1(0, 0); got != 0 {
		t.Errorf("F1(0,0) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("F1(0.5,1) = %v", got)
	}
}

func TestPRCurveDeterministicUnderTies(t *testing.T) {
	preds := []Prediction{
		{"b", "y", 0.5}, {"a", "a", 0.5}, {"c", "c", 0.9},
	}
	c1 := PRCurve(preds, same, 3)
	// Shuffled input, same curve.
	c2 := PRCurve([]Prediction{preds[2], preds[0], preds[1]}, same, 3)
	if len(c1.Points) != len(c2.Points) {
		t.Fatal("curves differ")
	}
	for i := range c1.Points {
		if c1.Points[i] != c2.Points[i] {
			t.Error("curve must be independent of input order")
		}
	}
}
