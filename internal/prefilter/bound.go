package prefilter

import "sort"

// Upper-bound machinery for the lossless pruned mode.
//
// The bound on a subject's gram dot product is classic WAND: each query
// term j can contribute at most qv_j * max_i(posting value of j), so the
// sum of those per-term maxima bounds any subject's dot, and a partial
// posting walk tightens it — a subject's bound becomes its walked partial
// sum plus the total impact of the unwalked tail. The dense blocks are
// unit-normalised, so their dots are bounded by the block weights alone.

// MaxContrib holds, per gram feature, the largest normalised posting value
// any known subject carries for it. Shards build private tables during the
// parallel index pass and Merge them; max is order-independent, so the
// merged table is identical for any worker count.
type MaxContrib struct {
	vals []float32
}

// NewMaxContrib allocates a table covering feature indices [0, dims).
func NewMaxContrib(dims int) *MaxContrib {
	return &MaxContrib{vals: make([]float32, dims)}
}

// Note records one posting value. Values are non-negative (TF-IDF weights
// of a normalised block).
func (c *MaxContrib) Note(idx uint32, v float32) {
	if v > c.vals[idx] {
		c.vals[idx] = v
	}
}

// Merge folds another shard's table in (elementwise max).
func (c *MaxContrib) Merge(o *MaxContrib) {
	for i, v := range o.vals {
		if v > c.vals[i] {
			c.vals[i] = v
		}
	}
}

// Get returns the recorded maximum for a feature, 0 when the feature is
// out of range (a query gram no known subject has).
func (c *MaxContrib) Get(idx uint32) float32 {
	if int(idx) >= len(c.vals) {
		return 0
	}
	return c.vals[idx]
}

// Dims reports the table size.
func (c *MaxContrib) Dims() int { return len(c.vals) }

// Values returns a copy of the per-feature maxima for persistence.
func (c *MaxContrib) Values() []float32 {
	out := make([]float32, len(c.vals))
	copy(out, c.vals)
	return out
}

// MaxContribFromValues reconstructs a table from persisted maxima.
func MaxContribFromValues(vals []float32) *MaxContrib {
	out := make([]float32, len(vals))
	copy(out, vals)
	return &MaxContrib{vals: out}
}

// OrderTermsByImpact returns term positions sorted by descending impact,
// ties broken by ascending position so the order is deterministic. The
// caller's order slice is reused when it has capacity.
func OrderTermsByImpact(imp []float64, order []int) []int {
	order = order[:0]
	for i := range imp {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		if imp[order[a]] != imp[order[b]] {
			return imp[order[a]] > imp[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// Bound is one subject's score upper bound.
type Bound struct {
	UB float64
	ID int32
}

// BoundHeap is a max-heap over bounds: the root is the best remaining
// candidate, ties broken by ascending subject id for determinism. The
// pruned scan heapifies all N bounds in O(N) and pops until the best
// remaining bound cannot beat the running top-k threshold.
type BoundHeap []Bound

// better reports whether a outranks b in pop order.
func better(a, b Bound) bool {
	if a.UB != b.UB {
		return a.UB > b.UB
	}
	return a.ID < b.ID
}

// Init establishes the heap property over the whole slice.
func (h BoundHeap) Init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h BoundHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && better(h[l], h[m]) {
			m = l
		}
		if r < n && better(h[r], h[m]) {
			m = r
		}
		if m == i {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Pop removes and returns the best remaining bound. The heap must be
// non-empty.
func (h *BoundHeap) Pop() Bound {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	s.down(0)
	*h = s
	return top
}
