// Deanonymize: the headline experiment of the paper (§V-C/§V-D). Dark Web
// aliases are linked to open Reddit aliases; each accepted pair is then
// classified the way the authors classified theirs by manual inspection
// (True / Probably True / Unclear / False), and the best True pair gets
// the full "John Doe" profile treatment — everything the open alias leaks.
//
//	go run ./examples/deanonymize
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"darklight"
	"darklight/internal/eval"
)

func main() {
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 11, Scale: 0.08})
	if err != nil {
		log.Fatal(err)
	}

	world.AlignUTC() // §IV-B: forum-local clocks → UTC
	pipe := darklight.NewPipeline()
	for _, d := range []*darklight.Dataset{world.Reddit, world.TMG, world.DM} {
		pipe.Polish(d)
	}
	reddit := pipe.Refine(world.Reddit)
	tmg := pipe.Refine(world.TMG)
	dm := pipe.Refine(world.DM)
	fmt.Printf("refined: reddit %d, tmg %d, dm %d\n\n", reddit.Len(), tmg.Len(), dm.Len())

	// Link both dark forums against Reddit (the paper pools them into one
	// candidate list of 47 pairs).
	ctx := context.Background()
	type pair struct {
		darkKey string
		match   darklight.Match
	}
	var accepted []pair
	for _, dark := range []struct {
		ds     *darklight.Dataset
		prefix string
	}{{tmg, "tmg/"}, {dm, "dm/"}} {
		matches, err := pipe.Link(ctx, reddit, dark.ds)
		if err != nil {
			log.Fatal(err)
		}
		for _, m := range matches {
			if m.Accepted {
				accepted = append(accepted, pair{darkKey: dark.prefix + m.Unknown, match: m})
			}
		}
	}
	sort.Slice(accepted, func(i, j int) bool { return accepted[i].match.Score > accepted[j].match.Score })

	// Simulated manual inspection, with the evidence classes of §V-A.
	inspector := eval.NewInspector(world.Truth)
	counts := map[eval.Verdict]int{}
	fmt.Println("accepted pairs (dark alias -> reddit alias):")
	var bestTrue *pair
	for i := range accepted {
		p := &accepted[i]
		verdict := inspector.Classify(p.darkKey, "reddit/"+p.match.Candidate)
		counts[verdict]++
		fmt.Printf("  %.4f  %-26s -> %-26s %s\n", p.match.Score, p.match.Unknown, p.match.Candidate, verdict)
		if bestTrue == nil && (verdict == eval.VerdictTrue || verdict == eval.VerdictProbablyTrue) {
			bestTrue = p
		}
	}
	fmt.Printf("\nverdicts: True %d / Probably True %d / Unclear %d / False %d\n",
		counts[eval.VerdictTrue], counts[eval.VerdictProbablyTrue],
		counts[eval.VerdictUnclear], counts[eval.VerdictFalse])

	// §V-D: profile the best confirmed match from what their open alias
	// revealed across both platforms.
	if bestTrue == nil {
		fmt.Println("\nno confirmed pair in this run — try another seed")
		return
	}
	truth := world.Truth
	openKey := "reddit/" + bestTrue.match.Candidate
	fmt.Printf("\n§V-D profile of %q (a.k.a. %q on the Dark Web):\n",
		bestTrue.match.Candidate, bestTrue.match.Unknown)
	if kinds := truth.LinkEvidence[openKey]; len(kinds) > 0 {
		fmt.Printf("  linking evidence: %v\n", kinds)
	}
	seen := map[string]bool{}
	for _, key := range []string{openKey, bestTrue.darkKey} {
		for _, f := range truth.Revealed[key] {
			line := fmt.Sprintf("  %-18s %s", string(f.Kind)+":", f.Value)
			if !seen[line] {
				seen[line] = true
				fmt.Println(line)
			}
		}
	}
}
