// Command scrape crawls a forumd instance into a JSONL dataset.
//
// Usage:
//
//	scrape -url http://127.0.0.1:8989 -out tmg.jsonl [-interval 50ms]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"darklight"
	"darklight/internal/forum"
	"darklight/internal/scraper"
)

func main() {
	var (
		base     = flag.String("url", "http://127.0.0.1:8989", "forum base URL")
		out      = flag.String("out", "scraped.jsonl", "output JSONL path")
		name     = flag.String("name", "scraped", "dataset name")
		interval = flag.Duration("interval", 20*time.Millisecond, "politeness delay between requests")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := scraper.Options{RequestInterval: *interval}
	if !*quiet {
		opts.Logf = log.Printf
	}
	sc := scraper.New(*base, opts)
	start := time.Now()
	dataset, err := sc.Scrape(ctx, *name, forum.PlatformSynthetic)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scrape:", err)
		os.Exit(1)
	}
	if err := darklight.SaveJSONL(*out, dataset); err != nil {
		fmt.Fprintln(os.Stderr, "scrape:", err)
		os.Exit(1)
	}
	st := sc.Stats()
	log.Printf("scrape: %d aliases, %d posts from %d threads on %d boards (%d requests, %d retries) in %s → %s",
		dataset.Len(), st.Posts, st.Threads, st.Boards, st.Requests, st.Retries,
		time.Since(start).Round(time.Millisecond), *out)
}
