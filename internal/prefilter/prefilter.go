// Package prefilter implements the stage-1 candidate pre-filters that make
// ranking sub-linear in the known-set size: a lossless WAND-style
// upper-bound pruning pass (ModePruned, the default) and an approximate
// banded-MinHash filter (ModeLSH) for the 100-1000x regime.
//
// The package owns the mode/parameter vocabulary, the per-term maximum
// contributions the pruned mode's bounds are built from, the bound heap the
// pruned scan pops candidates from, and the deterministic seeded MinHash
// index. The attribution matcher composes these into its ranking paths; the
// eval harness (internal/eval) measures the approximate mode's recall at
// each operating point rather than assuming it.
//
// Everything here is deterministic: the hash family is derived from a fixed
// seed by splitmix64 (no math/rand, no time), bucket lists are built in
// ascending subject order, and candidate unions are sorted before use, so a
// query returns the same candidate set on every run and on every worker.
package prefilter

import (
	"fmt"

	"darklight/internal/obs"
)

// Mode selects the stage-1 candidate pre-filter.
type Mode uint8

const (
	// ModeDefault defers to the configured default (ModePruned unless the
	// matcher options say otherwise).
	ModeDefault Mode = iota
	// ModeExact disables the pre-filter: every known subject is scored.
	ModeExact
	// ModePruned is the lossless upper-bound pruning pass: subjects whose
	// score bound cannot reach the current top-k are never exactly scored.
	// Its top-k is bit-identical to ModeExact's.
	ModePruned
	// ModeLSH is the approximate banded-MinHash filter: only subjects
	// sharing a band bucket with the query are scored. Recall is measured
	// by the eval harness, not guaranteed.
	ModeLSH
)

// String returns the wire/flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModePruned:
		return "pruned"
	case ModeLSH:
		return "lsh"
	default:
		return "default"
	}
}

// ParseMode parses a flag or request value. The empty string is
// ModeDefault, so callers can treat "knob absent" and "knob zero" alike.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "":
		return ModeDefault, nil
	case "exact":
		return ModeExact, nil
	case "pruned":
		return ModePruned, nil
	case "lsh":
		return ModeLSH, nil
	default:
		return ModeDefault, fmt.Errorf("prefilter: unknown mode %q (want exact, pruned, or lsh)", s)
	}
}

// Defaults. The pruned safety margins are deliberately generous relative to
// float32 accumulation error (scores are at most ~1): losslessness must
// never hinge on a tight epsilon. The LSH operating point (32 bands of 3
// rows) is chosen from measured gram-set Jaccard on synth worlds: two
// documents by the same author land around s = 0.35-0.55 under the
// reduction extraction (word 1-3 + char 1-5 grams), where the candidate
// probability 1-(1-s^3)^32 is 0.72-0.996, while unrelated subjects with
// distinct vocabularies sit near s <= 0.05 and collide with probability
// under 0.005. internal/eval sweeps this point against its neighbours.
const (
	DefaultSlack     = 1e-3
	DefaultTailShare = 0.05
	DefaultBands     = 32
	DefaultRows      = 3
	// DefaultSeed spells "darkligh"; any fixed value works, it just must
	// never vary between runs.
	DefaultSeed = uint64(0x6461726b6c696768)
	// MinHashValueFloor is the smallest unit-norm gram value a feature
	// needs to enter a MinHash set. Corpus-universal grams survive the
	// frequency-ranked vocabulary cut but carry IDF ≈ 0 (idf(N, df=N) is
	// exactly 0), so they sit in every subject's gram-id set with a near-
	// zero value — hashing them inflates every cross-subject Jaccard (and
	// therefore the candidate count) without making true matches any more
	// likely to collide. The floor must cut ONLY that weightless band: a
	// gram at 1e-4 on a unit-norm vector contributes at most 1e-4 to any
	// cosine, and all floored grams together at most 1e-4·sqrt(d) (~0.006
	// at d = 3400), while an aggressive cut (say the top value quartile)
	// would replace stable set membership with a noisy TF ordering and
	// wreck the Jaccard estimate. The floor is part of the LSH mode's
	// definition: index side and query side both apply it, so the estimate
	// stays symmetric.
	MinHashValueFloor = 1e-4
)

// PrunedParams are the safety knobs of the lossless mode. Both knobs trade
// pruning power for bound tightness, never correctness: larger values skip
// fewer subjects but the top-k stays bit-identical at any setting.
type PrunedParams struct {
	// Slack is an extra additive margin on every upper bound, on top of
	// the fixed float32-drift guards the matcher always applies. 0 means
	// DefaultSlack.
	Slack float64
	// TailShare is the fraction of total query impact that may remain
	// unwalked after the posting sweep: the walk stops early and the
	// remaining impact is folded into every bound instead. 0 means
	// DefaultTailShare; negative walks every term.
	TailShare float64
}

// WithDefaults fills zero knobs.
func (p PrunedParams) WithDefaults() PrunedParams {
	if p.Slack == 0 {
		p.Slack = DefaultSlack
	}
	if p.TailShare == 0 {
		p.TailShare = DefaultTailShare
	}
	return p
}

// LSHParams are one MinHash-LSH operating point. Two signatures collide in
// a band iff their Rows minima all agree, so the candidate probability for
// Jaccard similarity s is 1-(1-s^Rows)^Bands: more rows sharpens the
// cutoff, more bands shifts it toward recall.
type LSHParams struct {
	// Bands is the number of independent bucket tables. 0 means
	// DefaultBands.
	Bands int
	// Rows is the number of MinHash values folded into each band key.
	// 0 means DefaultRows.
	Rows int
	// Seed derives the hash family. 0 means DefaultSeed.
	Seed uint64
}

// WithDefaults fills zero knobs.
func (p LSHParams) WithDefaults() LSHParams {
	if p.Bands <= 0 {
		p.Bands = DefaultBands
	}
	if p.Rows <= 0 {
		p.Rows = DefaultRows
	}
	if p.Seed == 0 {
		p.Seed = DefaultSeed
	}
	return p
}

// Params bundle a default mode with both modes' knobs; the matcher embeds
// one in its Options and per-query MatchOptions may override pieces.
type Params struct {
	Mode   Mode
	Pruned PrunedParams
	LSH    LSHParams
}

// WithDefaults resolves ModeDefault to ModePruned (the lossless mode is
// safe to default) and fills both knob sets.
func (p Params) WithDefaults() Params {
	if p.Mode == ModeDefault {
		p.Mode = ModePruned
	}
	p.Pruned = p.Pruned.WithDefaults()
	p.LSH = p.LSH.WithDefaults()
	return p
}

// Stats report what one pre-filtered query did. All fields are counts of
// work performed — never durations — so totals are identical for any worker
// count and with tracing on or off (the same discipline as the matcher's
// own metrics).
type Stats struct {
	// Mode is the mode that actually ran (a per-query ModeDefault resolves
	// before stats are taken).
	Mode Mode
	// Candidates is how many subjects survived the pre-filter.
	Candidates int
	// Scored is how many subjects were exactly scored. Equal to Candidates
	// for every current mode; kept separate so a future mode may examine
	// candidates it does not score.
	Scored int
	// Pruned is how many known subjects were skipped without an exact
	// score. Candidates + Pruned is the known-set size.
	Pruned int
	// Evictions is how many full-heap replacements the bounded top-k
	// selection performed: scored candidates that displaced a previously
	// retained entry. A high eviction count relative to Scored means the
	// candidate stream arrived in a poor order for the heap (request
	// traces surface it per query for exactly that diagnosis).
	Evictions int
}

// Pre-filter metrics, registered on the default registry like the
// matcher's own.
var (
	mQueries = obs.Default().CounterVec("prefilter_queries_total",
		"stage-1 queries by the pre-filter mode that ran", "mode")
	mScored = obs.Default().Counter("prefilter_scored_total",
		"known subjects exactly scored after pre-filtering")
	mPruned = obs.Default().Counter("prefilter_pruned_total",
		"known subjects skipped by the pre-filter without an exact score")
	mCandidates = obs.Default().Histogram("prefilter_candidates",
		"candidate-set sizes surviving the pre-filter",
		[]float64{1, 10, 100, 1000, 10000, 100000, 1000000})
)

// Observe records one query's stats on the package metrics.
func Observe(st Stats) {
	mQueries.With(st.Mode.String()).Inc()
	mScored.Add(int64(st.Scored))
	mPruned.Add(int64(st.Pruned))
	mCandidates.Observe(float64(st.Candidates))
}
