package scraper

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"darklight/internal/darkweb"
	"darklight/internal/forum"
)

func serveDataset(t *testing.T, d *forum.Dataset, opts darkweb.Options) *httptest.Server {
	t.Helper()
	srv := darkweb.NewServer(d.Name, d, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func sampleDataset() *forum.Dataset {
	d := forum.NewDataset("sample", forum.PlatformTheMajesticGarden)
	t0 := time.Date(2017, 8, 1, 9, 0, 0, 0, time.UTC)
	for _, user := range []string{"ann", "ben"} {
		a := forum.Alias{Name: user}
		for i := 0; i < 30; i++ {
			a.Messages = append(a.Messages, forum.Message{
				ID: user + "-" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Author: user,
				Board: "garden", Thread: "t" + string(rune('0'+i%3)),
				Body:     "greetings from " + user + " message " + string(rune('a'+i%26)),
				PostedAt: t0.Add(time.Duration(i) * time.Hour),
			})
		}
		d.Add(a)
	}
	return d
}

func TestScrapeLossless(t *testing.T) {
	original := sampleDataset()
	ts := serveDataset(t, original, darkweb.Options{})
	sc := New(ts.URL, Options{})
	got, err := sc.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != original.Len() {
		t.Fatalf("aliases = %d, want %d", got.Len(), original.Len())
	}
	if got.TotalMessages() != original.TotalMessages() {
		t.Fatalf("messages = %d, want %d", got.TotalMessages(), original.TotalMessages())
	}
	// Bodies and timestamps survive.
	ann, err := got.Find("ann")
	if err != nil {
		t.Fatal(err)
	}
	origAnn, _ := original.Find("ann")
	found := false
	for _, m := range ann.Messages {
		if m.ID == origAnn.Messages[0].ID {
			found = true
			if m.Body != origAnn.Messages[0].Body {
				t.Errorf("body = %q, want %q", m.Body, origAnn.Messages[0].Body)
			}
			if !m.PostedAt.Equal(origAnn.Messages[0].PostedAt) {
				t.Error("timestamp mismatch")
			}
			if m.Board != "garden" || m.Thread == "" {
				t.Errorf("board/thread lost: %q %q", m.Board, m.Thread)
			}
		}
	}
	if !found {
		t.Error("known message missing from scrape")
	}
	if st := sc.Stats(); st.Boards != 1 || st.Posts != original.TotalMessages() {
		t.Errorf("stats = %+v", st)
	}
}

func TestScrapeRetriesTransientFailures(t *testing.T) {
	original := sampleDataset()
	ts := serveDataset(t, original, darkweb.Options{FailureRate: 0.3, Seed: 4})
	sc := New(ts.URL, Options{MaxRetries: 10, BackoffBase: time.Millisecond})
	got, err := sc.Scrape(context.Background(), "scraped", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalMessages() != original.TotalMessages() {
		t.Errorf("lossy scrape under failures: %d vs %d", got.TotalMessages(), original.TotalMessages())
	}
	if sc.Stats().Retries == 0 {
		t.Error("expected retries against a 30% failure rate")
	}
}

func TestScrapeGivesUpEventually(t *testing.T) {
	ts := serveDataset(t, sampleDataset(), darkweb.Options{FailureRate: 1})
	sc := New(ts.URL, Options{MaxRetries: 2, BackoffBase: time.Millisecond})
	if _, err := sc.Scrape(context.Background(), "x", forum.PlatformTheMajesticGarden); err == nil {
		t.Error("permanent failures must surface an error")
	}
}

func TestScrapeHonoursContext(t *testing.T) {
	ts := serveDataset(t, sampleDataset(), darkweb.Options{Latency: 50 * time.Millisecond})
	sc := New(ts.URL, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sc.Scrape(ctx, "x", forum.PlatformTheMajesticGarden); err == nil {
		t.Error("cancelled scrape must return an error")
	}
}

func TestScrapeBoardFilter(t *testing.T) {
	d := sampleDataset()
	// Second board with its own thread (threads are global on the server,
	// so reusing a garden thread id would drag its posts along).
	d.Aliases[0].Messages[0].Board = "offtopic"
	d.Aliases[0].Messages[0].Thread = "offtopic-only"
	ts := serveDataset(t, d, darkweb.Options{})
	sc := New(ts.URL, Options{Boards: []string{"offtopic"}})
	got, err := sc.Scrape(context.Background(), "x", forum.PlatformTheMajesticGarden)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalMessages() != 1 {
		t.Errorf("filtered scrape has %d messages, want 1", got.TotalMessages())
	}
}

func TestScrapePoliteness(t *testing.T) {
	var times []time.Time
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		times = append(times, time.Now())
		w.Write([]byte("<html></html>"))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	sc := New(ts.URL, Options{RequestInterval: 30 * time.Millisecond})
	_, _ = sc.boards(context.Background())
	_, _ = sc.boards(context.Background())
	if len(times) != 2 {
		t.Fatalf("requests = %d", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < 25*time.Millisecond {
		t.Errorf("politeness gap = %v, want ≥ 30ms", gap)
	}
}

func TestParsePosts(t *testing.T) {
	page := `<html><body>
<article class="post" data-id="p1" data-author="zoe" data-board="b" data-time="2017-03-01T10:00:00Z">
hello &amp; goodbye &lt;3
</article>
<article class="post" data-id="p2" data-author="zoe" data-board="b" data-time="2017-03-01T11:00:00Z">
second
</article>
</body></html>`
	posts, err := ParsePosts(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 2 {
		t.Fatalf("posts = %d", len(posts))
	}
	if posts[0].Body != "hello & goodbye <3" {
		t.Errorf("unescaped body = %q", posts[0].Body)
	}
	if posts[0].PostedAt.Hour() != 10 {
		t.Error("timestamp not parsed")
	}
}

func TestParsePostsErrors(t *testing.T) {
	if _, err := ParsePosts(`<article class="post" data-author="x" data-time="garbage">b</article>`); err == nil {
		t.Error("bad timestamp must error")
	}
	if _, err := ParsePosts(`<article class="post" data-author="x">never closed`); err == nil {
		t.Error("unterminated article must error")
	}
	posts, err := ParsePosts("<html>no posts</html>")
	if err != nil || len(posts) != 0 {
		t.Error("empty page must parse cleanly")
	}
}

func TestExtractHrefs(t *testing.T) {
	page := `<a class="board" href="/board/x">x</a> <a class="next" href="/board/x?page=1">next</a> <a href="/plain">p</a>`
	if got := extractHrefs(page, "board"); len(got) != 1 || got[0] != "/board/x" {
		t.Errorf("board hrefs = %v", got)
	}
	if got := extractHrefs(page, "next"); len(got) != 1 || !strings.Contains(got[0], "page=1") {
		t.Errorf("next hrefs = %v", got)
	}
	if got := extractHrefs(page, "missing"); len(got) != 0 {
		t.Errorf("missing class hrefs = %v", got)
	}
}
