package serve

// Concurrency correctness, meant to run under -race:
//
//   - TestConcurrentEquivalence: 64 goroutines issuing a mix of rank,
//     rescore, and match requests over a pipeline-generated world receive
//     responses byte-identical to what the darklight batch facade
//     (Pipeline.LinkDetailed) computes sequentially.
//   - TestReloadMidBurstAtomic: a SIGHUP-style Reload in the middle of a
//     request burst never produces a torn response — every body is exactly
//     the v1 answer or exactly the v2 answer, and post-burst requests see v2.

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"darklight"
	"darklight/internal/attribution"
	"darklight/internal/obs"
)

// encodeBody marshals v exactly as writeJSON does: compact + trailing newline.
func encodeBody(t testing.TB, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal expected body: %v", err)
	}
	return string(data) + "\n"
}

func TestConcurrentEquivalence(t *testing.T) {
	ctx := context.Background()
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 5, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	pipe := darklight.NewPipeline(darklight.WithWordBudget(400))
	pipe.PolishContext(ctx, world.DM)
	mainDS, aeDS := pipe.SplitAlterEgos(pipe.Refine(world.DM))
	if aeDS.Len() < 2 {
		t.Skip("tiny world produced too few alter egos")
	}
	if aeDS.Len() > 12 {
		trimmed := *aeDS
		trimmed.Aliases = trimmed.Aliases[:12]
		aeDS = &trimmed
	}

	// Sequential ground truth through the batch facade.
	results, err := pipe.LinkDetailed(ctx, mainDS, aeDS)
	if err != nil {
		t.Fatal(err)
	}
	threshold := pipe.MatcherOptions().Threshold
	wantMatch := make(map[string]string, len(results))
	wantRank := make(map[string]string, len(results))
	wantRescore := make(map[string]string, len(results))
	rescoreReq := make(map[string]string, len(results))
	var names []string
	for i := range results {
		res := &results[i]
		names = append(names, res.Unknown)
		wantMatch[res.Unknown] = encodeBody(t, matchResponse(1, res, threshold))
		wantRank[res.Unknown] = encodeBody(t, &RankResponse{
			IndexVersion: 1, Subject: res.Unknown, Candidates: candidates(res.Candidates),
		})
		wantRescore[res.Unknown] = encodeBody(t, &RescoreResponse{
			IndexVersion: 1, Subject: res.Unknown, Rescored: candidates(res.Rescored),
		})
		req := RescoreRequest{Subject: SubjectSpec{Alias: res.Unknown}}
		for _, c := range res.Candidates {
			req.Candidates = append(req.Candidates, c.Name)
		}
		rescoreReq[res.Unknown] = encodeBody(t, &req)
	}

	known, err := pipe.Subjects(mainDS)
	if err != nil {
		t.Fatal(err)
	}
	query, err := pipe.Subjects(aeDS)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(ctx, Config{
		Loader:   func(context.Context) (*Corpus, error) { return &Corpus{Known: known, Query: query}, nil },
		Options:  pipe.MatcherOptions(),
		Subjects: pipe.SubjectOptions(),
		APIKeys:  []string{"test-key"},
		Clock:    newFakeClock(),
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()

	const goroutines = 64
	const perG = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				name := names[(g*perG+i)%len(names)]
				var path, body, want string
				switch (g + i) % 3 {
				case 0:
					path, want = "/v1/rank", wantRank[name]
					body = `{"subject":{"alias":"` + name + `"}}`
				case 1:
					path, want = "/v1/rescore", wantRescore[name]
					body = rescoreReq[name]
				default:
					path, want = "/v1/match", wantMatch[name]
					body = `{"subject":{"alias":"` + name + `"}}`
				}
				rec := do(h, "POST", path, "test-key", []byte(body))
				if rec.Code != 200 {
					errs <- path + " " + name + ": status " + rec.Body.String()
					return
				}
				if got := rec.Body.String(); got != want {
					errs <- path + " " + name + ": served body differs from sequential facade\n got: " + got + "want: " + want
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestReloadMidBurstAtomic(t *testing.T) {
	ctx := context.Background()

	// Corpus A: the fixture. Corpus B: the same six known names wearing
	// shifted styles, so every query's answer changes across the reload.
	corpusA := testCorpus(t)
	corpusB := shiftedCorpus(t)

	// Expected bodies per version, computed sequentially with the same
	// matcher construction the service uses.
	expect := func(c *Corpus, version int) map[string]string {
		m, err := attribution.NewMatcherContext(ctx, c.Known, testOptions())
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(c.Query))
		for i := range c.Query {
			res := m.Match(&c.Query[i])
			out[c.Query[i].Name] = encodeBody(t, matchResponse(version, &res, testOptions().Threshold))
		}
		return out
	}
	wantV1 := expect(corpusA, 1)
	wantV2 := expect(corpusB, 2)
	for name, v1 := range wantV1 {
		if v1 == wantV2[name] {
			t.Fatalf("fixture defect: %s answers identically on both corpora; reload would be unobservable", name)
		}
	}

	// The loader serves A on the initial load and B from then on.
	var loads atomic.Int32
	svc, err := New(ctx, Config{
		Loader: func(context.Context) (*Corpus, error) {
			if loads.Add(1) == 1 {
				return corpusA, nil
			}
			return corpusB, nil
		},
		Options:  testOptions(),
		Subjects: testSubjectOptions(),
		Clock:    newFakeClock(),
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()

	queryNames := []string{"q_alice", "q_dave"}
	const goroutines = 32
	const perG = 8
	var served atomic.Int32
	var reloadOnce sync.Once
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if served.Add(1) == goroutines*perG/2 {
					reloadOnce.Do(func() {
						if err := svc.Reload(ctx); err != nil {
							errs <- "reload: " + err.Error()
						}
					})
				}
				name := queryNames[(g+i)%len(queryNames)]
				rec := do(h, "POST", "/v1/match", "", []byte(`{"subject":{"alias":"`+name+`"}}`))
				if rec.Code != 200 {
					errs <- name + ": status " + rec.Body.String()
					return
				}
				got := rec.Body.String()
				if got != wantV1[name] && got != wantV2[name] {
					errs <- name + ": torn response (matches neither index version):\n" + got
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}

	if v := svc.Version(); v != 2 {
		t.Fatalf("post-burst version = %d, want 2", v)
	}
	for _, name := range queryNames {
		rec := do(h, "POST", "/v1/match", "", []byte(`{"subject":{"alias":"`+name+`"}}`))
		if got := rec.Body.String(); got != wantV2[name] {
			t.Errorf("post-reload %s still serving stale index:\n got: %s\nwant: %s", name, got, wantV2[name])
		}
	}
}

// shiftedCorpus is testCorpus with every known alias's style rotated by
// one variant, changing every stage-1 ordering.
func shiftedCorpus(t testing.TB) *Corpus {
	t.Helper()
	c := testCorpus(t)
	known := buildKnown(t, 1)
	c.Known = known
	return c
}

// buildKnown constructs the six known subjects with styles offset by shift.
func buildKnown(t testing.TB, shift int) []attribution.Subject {
	t.Helper()
	ds := newKnownDataset(shift)
	ks, err := attribution.BuildSubjects(ds, testSubjectOptions())
	if err != nil {
		t.Fatalf("build shifted known subjects: %v", err)
	}
	return ks
}
