// Fixture for the fsyncrename pass, second file: the PR 8 checkpoint
// compaction regression. Compaction rewrote the checkpoint into a temp
// file and renamed it into place without an fsync — a crash right after
// the rename could publish a truncated checkpoint and lose the journal
// replay point. The fixed production code routes through
// store.WriteFileAtomic instead.
package store

import (
	"os"
	"path/filepath"
)

func compactInPlace(path string, recs [][]byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "ckpt-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	for _, r := range recs {
		if _, err := tmp.Write(r); err != nil {
			tmp.Close()
			os.Remove(name)
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(name, path) // want `os\.Rename of tmp without Sync\(\) on every path since its last write; a crash can publish a truncated file — fsync before rename or use store\.WriteFileAtomic`
}
