package serve

import "time"

// Clock abstracts wall time so every time-dependent piece of the serving
// layer — rate-limit refill, latency observation, the drain timer — is
// drivable by a deterministic fake in tests. Production code passes
// SystemClock; nothing else in this package reads the wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
}

// systemClock is the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time {
	//lint:ignore wallclock the serving loop is the one sanctioned reader: rate-limit refill, latency histograms, and the drain timer need real time in production; every other path takes the injected Clock
	return time.Now()
}

func (systemClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// SystemClock is the production Clock.
var SystemClock Clock = systemClock{}
