// Package sparse implements the sparse vector arithmetic at the heart of
// the attribution pipeline. Feature vectors over 65k-dimensional n-gram
// vocabularies are overwhelmingly sparse; representing them as sorted
// (index, value) pairs makes cosine similarity — the paper's eq. (2) — a
// single linear merge with no hashing in the hot path.
package sparse

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strings"
)

// Vector is a sparse vector: parallel slices of strictly increasing indices
// and their values. The zero value is the zero vector. Vectors built by
// FromMap or finished with Sort satisfy the ordering invariant; Dot and
// Cosine require it.
type Vector struct {
	Idx []uint32
	Val []float64
}

// FromMap builds a sorted vector from an index→value map, dropping zeros.
func FromMap(m map[uint32]float64) Vector {
	idx := make([]uint32, 0, len(m))
	for i, v := range m {
		if v != 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	val := make([]float64, len(idx))
	for k, i := range idx {
		val[k] = m[i]
	}
	return Vector{Idx: idx, Val: val}
}

// FromDense builds a sparse vector from a dense slice, using positions as
// indices and dropping zeros.
func FromDense(dense []float64) Vector {
	var v Vector
	for i, x := range dense {
		if x != 0 {
			v.Idx = append(v.Idx, uint32(i))
			v.Val = append(v.Val, x)
		}
	}
	return v
}

// Len returns the number of stored (non-zero) entries.
func (v Vector) Len() int { return len(v.Idx) }

// IsSorted reports whether indices are strictly increasing.
func (v Vector) IsSorted() bool {
	for i := 1; i < len(v.Idx); i++ {
		if v.Idx[i] <= v.Idx[i-1] {
			return false
		}
	}
	return true
}

// Sort orders entries by index, summing values of duplicate indices (in
// their original order, so the float result is deterministic). Use after
// constructing a vector by appending. Large vectors take a stable LSD
// radix sort over the index bytes — vectorization finishes every vector
// with a Sort, and a comparison sort of the (index, position) pairs is the
// single most expensive step of the scoring hot path; small vectors keep
// the packed comparison sort, where the radix passes don't pay off.
func (v *Vector) Sort() {
	if v.IsSorted() {
		return
	}
	if len(v.Idx) >= 128 {
		v.radixSort()
		return
	}
	packed := make([]uint64, len(v.Idx))
	for k, i := range v.Idx {
		packed[k] = uint64(i)<<32 | uint64(uint32(k))
	}
	slices.Sort(packed)
	vals := make([]float64, len(v.Val))
	copy(vals, v.Val)
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
	for _, p := range packed {
		i := uint32(p >> 32)
		x := vals[uint32(p)]
		v.appendSummed(i, x)
	}
}

// appendSummed appends (i, x), folding x into the last value when the
// index repeats — the shared compaction step of both sort paths.
func (v *Vector) appendSummed(i uint32, x float64) {
	if n := len(v.Idx); n > 0 && v.Idx[n-1] == i {
		v.Val[n-1] += x
		return
	}
	v.Idx = append(v.Idx, i)
	v.Val = append(v.Val, x)
}

// radixSort is the large-vector path of Sort: stable byte-wise LSD radix
// on the indices, carrying values alongside. Stability makes duplicate
// indices end up in original order, so the duplicate-summing compaction
// adds values in exactly the order the packed comparison sort would.
func (v *Vector) radixSort() {
	n := len(v.Idx)
	maxIdx := uint32(0)
	for _, i := range v.Idx {
		if i > maxIdx {
			maxIdx = i
		}
	}
	srcI, srcV := v.Idx, v.Val
	dstI := make([]uint32, n)
	dstV := make([]float64, n)
	var counts [256]int
	for shift := uint(0); shift == 0 || maxIdx>>shift > 0; shift += 8 {
		clear(counts[:])
		for _, x := range srcI {
			counts[(x>>shift)&0xff]++
		}
		if counts[(srcI[0]>>shift)&0xff] == n {
			continue // all keys share this byte: pass is a no-op
		}
		sum := 0
		for d := range counts {
			counts[d], sum = sum, sum+counts[d]
		}
		for k, x := range srcI {
			p := counts[(x>>shift)&0xff]
			counts[(x>>shift)&0xff]++
			dstI[p], dstV[p] = x, srcV[k]
		}
		srcI, srcV, dstI, dstV = dstI, dstV, srcI, srcV
	}
	// Compact duplicates into the vector's own storage. srcI/srcV hold the
	// sorted entries; they may alias v's slices, but compaction only writes
	// at or behind the read cursor, so in-place is safe.
	sortedI, sortedV := srcI, srcV
	v.Idx = v.Idx[:0]
	v.Val = v.Val[:0]
	for k, i := range sortedI {
		v.appendSummed(i, sortedV[k])
	}
}

// Get returns the value at index i (0 when absent). O(log n).
func (v Vector) Get(i uint32) float64 {
	k := sort.Search(len(v.Idx), func(j int) bool { return v.Idx[j] >= i })
	if k < len(v.Idx) && v.Idx[k] == i {
		return v.Val[k]
	}
	return 0
}

// Dot returns the inner product of two sorted vectors.
func Dot(a, b Vector) float64 {
	sum := 0.0
	i, j := 0, 0
	for i < len(a.Idx) && j < len(b.Idx) {
		switch {
		case a.Idx[i] == b.Idx[j]:
			sum += a.Val[i] * b.Val[j]
			i++
			j++
		case a.Idx[i] < b.Idx[j]:
			i++
		default:
			j++
		}
	}
	return sum
}

// Norm returns the Euclidean norm.
func (v Vector) Norm() float64 {
	sum := 0.0
	for _, x := range v.Val {
		sum += x * x
	}
	return math.Sqrt(sum)
}

// Cosine returns the cosine similarity of two sorted vectors — eq. (2) of
// the paper. Either vector being zero yields 0. With non-negative features
// (term frequencies, activity profiles) the result lies in [0, 1].
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Scale multiplies every value by s, in place, and returns v for chaining.
func (v Vector) Scale(s float64) Vector {
	for i := range v.Val {
		v.Val[i] *= s
	}
	return v
}

// Normalize scales v to unit norm in place (no-op for the zero vector) and
// returns it. Pre-normalised vectors make repeated cosine computations a
// plain dot product.
func (v Vector) Normalize() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Clone returns a deep copy.
func (v Vector) Clone() Vector {
	out := Vector{Idx: make([]uint32, len(v.Idx)), Val: make([]float64, len(v.Val))}
	copy(out.Idx, v.Idx)
	copy(out.Val, v.Val)
	return out
}

// Concat appends b's entries after a's, offsetting b's indices by offset.
// It is how the paper concatenates the 24-dimensional daily activity
// profile onto the text feature vector. offset must exceed a's largest
// index; Concat panics otherwise because the result would be unsorted —
// this is a programming error, not an input error.
func Concat(a Vector, b Vector, offset uint32) Vector {
	if len(a.Idx) > 0 && a.Idx[len(a.Idx)-1] >= offset {
		panic(fmt.Sprintf("sparse: concat offset %d not past max index %d", offset, a.Idx[len(a.Idx)-1]))
	}
	out := Vector{
		Idx: make([]uint32, 0, len(a.Idx)+len(b.Idx)),
		Val: make([]float64, 0, len(a.Val)+len(b.Val)),
	}
	out.Idx = append(out.Idx, a.Idx...)
	out.Val = append(out.Val, a.Val...)
	for k, i := range b.Idx {
		out.Idx = append(out.Idx, i+offset)
		out.Val = append(out.Val, b.Val[k])
	}
	return out
}

// Add returns the element-wise sum of two sorted vectors.
func Add(a, b Vector) Vector {
	out := Vector{
		Idx: make([]uint32, 0, len(a.Idx)+len(b.Idx)),
		Val: make([]float64, 0, len(a.Val)+len(b.Val)),
	}
	i, j := 0, 0
	for i < len(a.Idx) || j < len(b.Idx) {
		switch {
		case j >= len(b.Idx) || (i < len(a.Idx) && a.Idx[i] < b.Idx[j]):
			out.Idx = append(out.Idx, a.Idx[i])
			out.Val = append(out.Val, a.Val[i])
			i++
		case i >= len(a.Idx) || b.Idx[j] < a.Idx[i]:
			out.Idx = append(out.Idx, b.Idx[j])
			out.Val = append(out.Val, b.Val[j])
			j++
		default:
			s := a.Val[i] + b.Val[j]
			if s != 0 {
				out.Idx = append(out.Idx, a.Idx[i])
				out.Val = append(out.Val, s)
			}
			i++
			j++
		}
	}
	return out
}

// Project returns a copy of v restricted to the given sorted index set.
func Project(v Vector, keep []uint32) Vector {
	var out Vector
	i, j := 0, 0
	for i < len(v.Idx) && j < len(keep) {
		switch {
		case v.Idx[i] == keep[j]:
			out.Idx = append(out.Idx, v.Idx[i])
			out.Val = append(out.Val, v.Val[i])
			i++
			j++
		case v.Idx[i] < keep[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// String renders a short human-readable form, for debugging and tests.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for k := range v.Idx {
		if k > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d:%.4g", v.Idx[k], v.Val[k])
		if k >= 15 && len(v.Idx) > 17 {
			fmt.Fprintf(&b, ", …%d more", len(v.Idx)-k-1)
			break
		}
	}
	b.WriteByte('}')
	return b.String()
}
