package experiments

import (
	"fmt"
	"strings"
	"time"

	"darklight/internal/attribution"
	"darklight/internal/baselines"
	"darklight/internal/corpus"
	"darklight/internal/eval"
)

// ---------------------------------------------------------------- Fig. 1

// Figure1Report reproduces Fig. 1: the cumulative distribution of the
// number of words per user on the Dark Web forums.
type Figure1Report struct {
	Thresholds []int
	TMGCDF     []float64
	DMCDF      []float64
	TMGUsers   int
	DMUsers    int
}

// Figure1Thresholds spans the word counts of interest (log-ish spacing).
var Figure1Thresholds = []int{50, 100, 200, 300, 500, 750, 1000, 1500, 2000, 3000, 5000, 10000, 20000, 50000}

// Figure1 computes the CDFs on the polished (pre-refinement) datasets —
// the figure motivates the refinement thresholds, so it must include the
// users those thresholds drop.
func (l *Lab) Figure1() *Figure1Report {
	return &Figure1Report{
		Thresholds: Figure1Thresholds,
		TMGCDF:     corpus.WordCountCDF(l.RawTMG, Figure1Thresholds),
		DMCDF:      corpus.WordCountCDF(l.RawDM, Figure1Thresholds),
		TMGUsers:   l.RawTMG.Len(),
		DMUsers:    l.RawDM.Len(),
	}
}

// String renders the CDF series.
func (r *Figure1Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — CDF of words per user (TMG %d users, DM %d users)\n", r.TMGUsers, r.DMUsers)
	fmt.Fprintf(&b, "%10s %10s %10s\n", "words ≤", "TMG", "DM")
	for i, t := range r.Thresholds {
		fmt.Fprintf(&b, "%10d %9.1f%% %9.1f%%\n", t, 100*r.TMGCDF[i], 100*r.DMCDF[i])
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 2

// Figure2Report reproduces Fig. 2: the precision–recall curves of the two
// Reddit alter-ego splits W1 and W2, and the threshold chosen on W1.
type Figure2Report struct {
	W1, W2 eval.Curve
	// Threshold is the operating point chosen on W1 (80% recall, §IV-E).
	Threshold   float64
	W1Precision float64
	W1Recall    float64
	W2Precision float64
	W2Recall    float64
}

// Figure2 runs the threshold-finding experiment.
func (l *Lab) Figure2() (*Figure2Report, error) {
	curves, err := l.aeCurves()
	if err != nil {
		return nil, err
	}
	rep := &Figure2Report{W1: curves.w1, W2: curves.w2}
	if p, ok := curves.w1.ThresholdForRecall(0.80); ok {
		rep.Threshold = p.Threshold
	} else {
		rep.Threshold = attribution.DefaultThreshold
	}
	rep.W1Precision, rep.W1Recall = curves.w1.AtThreshold(rep.Threshold)
	rep.W2Precision, rep.W2Recall = curves.w2.AtThreshold(rep.Threshold)
	return rep, nil
}

// String renders both curves and the operating points.
func (r *Figure2Report) String() string {
	var b strings.Builder
	b.WriteString("Figure 2 — precision-recall curves for sets W1 and W2\n")
	fmt.Fprintf(&b, "threshold (chosen on W1 at 80%% recall): %.4f\n", r.Threshold)
	fmt.Fprintf(&b, "W1: P=%.1f%% R=%.1f%% (AUC %.2f)   W2: P=%.1f%% R=%.1f%% (AUC %.2f)\n",
		100*r.W1Precision, 100*r.W1Recall, r.W1.AUC(),
		100*r.W2Precision, 100*r.W2Recall, r.W2.AUC())
	b.WriteString(renderCurves(map[string]eval.Curve{"W1": r.W1, "W2": r.W2}))
	return b.String()
}

// renderCurves prints curve points at fixed recall grid lines.
func renderCurves(curves map[string]eval.Curve) string {
	grid := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}
	names := make([]string, 0, len(curves))
	for n := range curves {
		names = append(names, n)
	}
	sortStrings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "recall")
	for _, n := range names {
		fmt.Fprintf(&b, " %12s", "P("+n+")")
	}
	b.WriteByte('\n')
	for _, rec := range grid {
		fmt.Fprintf(&b, "%7.0f%%", 100*rec)
		for _, n := range names {
			p := precisionAtRecall(curves[n], rec)
			if p < 0 {
				fmt.Fprintf(&b, " %12s", "-")
			} else {
				fmt.Fprintf(&b, " %11.1f%%", 100*p)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// precisionAtRecall returns the precision of the first curve point with at
// least the target recall, -1 when the curve never gets there.
func precisionAtRecall(c eval.Curve, recall float64) float64 {
	if p, ok := c.ThresholdForRecall(recall); ok {
		return p.Precision
	}
	return -1
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ---------------------------------------------------------------- Fig. 3

// Figure3Report reproduces Fig. 3 and the §IV-F runtime comparison: the
// Standard baseline, the Koppel baseline, and our method on the same data.
type Figure3Report struct {
	Standard, Koppel, Ours eval.Curve
	StandardTime           time.Duration
	KoppelTime             time.Duration
	OursTime               time.Duration
	Known, Unknowns        int
}

// Figure3 runs all three methods over the same known/unknown sets.
func (l *Lab) Figure3() (*Figure3Report, error) {
	opts := l.SubjectOpts()
	knownAll, err := attribution.BuildSubjects(l.Reddit, opts)
	if err != nil {
		return nil, err
	}
	aeAll, err := attribution.BuildSubjects(l.AEReddit, opts)
	if err != nil {
		return nil, err
	}
	known, unknown := sampleKnownUnknown(knownAll, aeAll,
		l.Cfg.BaselineKnown, l.Cfg.BaselineUnknowns, int64(l.Cfg.Seed)+404)
	rep := &Figure3Report{Known: len(known), Unknowns: len(unknown)}
	ctx := l.Context()

	// Standard baseline: space-free char 4-grams + cosine.
	t := StartTimer()
	std := baselines.NewStandard(known, l.Cfg.Workers)
	stdPreds, err := std.Predict(ctx, unknown)
	if err != nil {
		return nil, err
	}
	rep.StandardTime = t.Elapsed()
	rep.Standard = eval.PRCurve(stdPreds, eval.SameName, len(unknown))

	// Our method: full two-stage pipeline.
	t = StartTimer()
	m, err := attribution.NewMatcher(known, l.MatcherOpts())
	if err != nil {
		return nil, err
	}
	results, err := m.MatchAll(ctx, unknown)
	if err != nil {
		return nil, err
	}
	rep.OursTime = t.Elapsed()
	rep.Ours = eval.PRCurve(predictionsOf(results), eval.SameName, len(unknown))

	// Koppel baseline: 100 random 40% subspaces, vote share as score.
	t = StartTimer()
	kcfg := baselines.DefaultKoppelConfig()
	kcfg.Seed = l.Cfg.Seed
	kcfg.Workers = l.Cfg.Workers
	kop := baselines.NewKoppel(known, kcfg)
	kopPreds, err := kop.Predict(ctx, unknown)
	if err != nil {
		return nil, err
	}
	rep.KoppelTime = t.Elapsed()
	rep.Koppel = eval.PRCurve(kopPreds, eval.SameName, len(unknown))
	return rep, nil
}

// String renders AUCs, runtimes, and the curves.
func (r *Figure3Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — baseline comparison (%d known, %d unknowns)\n", r.Known, r.Unknowns)
	fmt.Fprintf(&b, "%-18s %8s %12s\n", "method", "AUC", "runtime")
	fmt.Fprintf(&b, "%-18s %8.2f %12s\n", "Standard Baseline", r.Standard.AUC(), r.StandardTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-18s %8.2f %12s\n", "Koppel Baseline", r.Koppel.AUC(), r.KoppelTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-18s %8.2f %12s\n", "Our method", r.Ours.AUC(), r.OursTime.Round(time.Millisecond))
	b.WriteString(renderCurves(map[string]eval.Curve{
		"std": r.Standard, "koppel": r.Koppel, "ours": r.Ours,
	}))
	return b.String()
}

// ---------------------------------------------------------------- Fig. 4

// Figure4Report reproduces Fig. 4: k-attribution accuracy as k grows, with
// and without the daily-activity feature, on Reddit (a) and the merged
// Dark Web forums (b).
type Figure4Report struct {
	Ks           []int
	RedditText   []float64
	RedditAll    []float64
	DarkText     []float64
	DarkAll      []float64
	RedditKnown  int
	DarkKnown    int
	RedditProbes int
	DarkProbes   int
}

// Figure4 sweeps k from 1 to 10 on both platforms.
func (l *Lab) Figure4() (*Figure4Report, error) {
	rep := &Figure4Report{}
	for k := 1; k <= 10; k++ {
		rep.Ks = append(rep.Ks, k)
	}

	mo := l.MatcherOpts()
	textW := attribution.Weights{Freq: mo.FreqWeight, Activity: 0}
	allW := attribution.Weights{Freq: mo.FreqWeight, Activity: mo.ActivityWeight}

	// Reddit.
	rm, err := l.RedditMatcher()
	if err != nil {
		return nil, err
	}
	redditAEAll, err := attribution.BuildSubjects(l.AEReddit, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	redditAE := sampleSubjects(redditAEAll,
		l.Cfg.Table3Unknowns, int64(l.Cfg.Seed)+606)
	rText, rAll := rankPair(rm, redditAE, textW, allW)
	rep.RedditKnown, rep.RedditProbes = rm.NumKnown(), len(redditAE)

	// Merged Dark Web.
	dm, err := l.DarkMatcher()
	if err != nil {
		return nil, err
	}
	_, darkAE := l.DarkWeb()
	darkSubjects, err := attribution.BuildSubjects(darkAE, l.SubjectOpts())
	if err != nil {
		return nil, err
	}
	dText, dAll := rankPair(dm, darkSubjects, textW, allW)
	rep.DarkKnown, rep.DarkProbes = dm.NumKnown(), len(darkSubjects)

	for _, k := range rep.Ks {
		rep.RedditText = append(rep.RedditText, eval.AccuracyAtK(rText, eval.SameName, k))
		rep.RedditAll = append(rep.RedditAll, eval.AccuracyAtK(rAll, eval.SameName, k))
		rep.DarkText = append(rep.DarkText, eval.AccuracyAtK(dText, eval.SameName, k))
		rep.DarkAll = append(rep.DarkAll, eval.AccuracyAtK(dAll, eval.SameName, k))
	}
	return rep, nil
}

func rankPair(m *attribution.Matcher, probes []attribution.Subject, textW, allW attribution.Weights) (text, all []eval.Ranking) {
	for i := range probes {
		text = append(text, rankingOf(probes[i].Name, m.RankWith(&probes[i], 10, textW)))
		all = append(all, rankingOf(probes[i].Name, m.RankWith(&probes[i], 10, allW)))
	}
	return text, all
}

// String renders both panels.
func (r *Figure4Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — impact of the daily activity feature\n")
	fmt.Fprintf(&b, "(a) Reddit: %d known, %d probes    (b) DarkWeb: %d known, %d probes\n",
		r.RedditKnown, r.RedditProbes, r.DarkKnown, r.DarkProbes)
	fmt.Fprintf(&b, "%4s %14s %14s %14s %14s\n", "k", "reddit(text)", "reddit(all)", "dark(text)", "dark(all)")
	for i, k := range r.Ks {
		fmt.Fprintf(&b, "%4d %13.1f%% %13.1f%% %13.1f%% %13.1f%%\n",
			k, 100*r.RedditText[i], 100*r.RedditAll[i], 100*r.DarkText[i], 100*r.DarkAll[i])
	}
	return b.String()
}

// ---------------------------------------------------------------- Fig. 5

// Figure5Report reproduces Fig. 5: precision-recall with and without the
// search-space reduction (the curve view of Table VI).
type Figure5Report struct {
	Table *Table6Report
}

// Figure5 reuses Table VI's curves.
func (l *Lab) Figure5() (*Figure5Report, error) {
	t6, err := l.Table6()
	if err != nil {
		return nil, err
	}
	return &Figure5Report{Table: t6}, nil
}

// String renders all six curves.
func (r *Figure5Report) String() string {
	var b strings.Builder
	b.WriteString("Figure 5 — precision and recall with and without search space reduction\n")
	b.WriteString(renderCurves(r.Table.Curves))
	return b.String()
}
