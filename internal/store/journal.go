package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"darklight/internal/forum"
)

// The journal is the snapshot's write-ahead side: one JSON line per
// scraped thread delta, each stamped with a monotonically increasing
// sequence number. The snapshot records the last sequence it has folded
// in (header.LastSeq), so crash recovery is idempotent — cold start
// loads the snapshot and replays only entries above LastSeq, whether or
// not the previous process got around to compacting.
//
// Torn-tail discipline follows forum.ReadCheckpoint: a kill mid-append
// leaves a final line that does not decode, and exactly that line is
// dropped; an undecodable line anywhere else is mid-file corruption and
// fails the load with a structured error.

// JournalEntry is one appended thread delta.
type JournalEntry struct {
	Seq    uint64             `json:"seq"`
	Thread forum.ThreadRecord `json:"thread"`
}

// maxJournalLine bounds one journal line (a full thread of posts).
const maxJournalLine = 1 << 24

// readJournal parses raw journal bytes, dropping at most a torn final
// line. It returns the entries and the number of bytes the intact prefix
// spans (for compaction). Errors are *CorruptError with Section
// "journal".
func readJournal(raw []byte) ([]JournalEntry, int, error) {
	var entries []JournalEntry
	intact := 0
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), maxJournalLine)
	lineNo := 0
	badLine := 0 // 1-based line number of the first undecodable line
	var lastSeq uint64
	for sc.Scan() {
		lineNo++
		if badLine != 0 {
			// A decodable line after a bad one: the tear is mid-file.
			return nil, 0, corrupt("journal", "line %d: corrupt record", badLine)
		}
		line := sc.Bytes()
		var e JournalEntry
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			badLine = lineNo
			continue
		}
		if e.Seq <= lastSeq {
			return nil, 0, corrupt("journal", "line %d: sequence %d not increasing (previous %d)", lineNo, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		entries = append(entries, e)
		intact += len(line) + 1
	}
	if err := sc.Err(); err != nil {
		return nil, 0, corrupt("journal", "scan: %v", err)
	}
	return entries, intact, nil
}

// appendJournalLine encodes one entry as a single JSON line.
func appendJournalLine(f *os.File, e JournalEntry) error {
	enc := json.NewEncoder(f)
	if err := enc.Encode(&e); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	// The delta must be durable before the scrape acknowledges the thread;
	// otherwise a crash could lose a delta the snapshot will never see.
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	return nil
}
