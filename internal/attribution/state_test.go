package attribution

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"darklight/internal/prefilter"
)

// assertMatchersEquivalent drives both matchers through every query path —
// stage 1 in all three pre-filter modes, stage 2, and the full two-stage
// MatchAll — and requires bit-identical output.
func assertMatchersEquivalent(t *testing.T, got, want *Matcher, probes []Subject) {
	t.Helper()
	w := Weights{Freq: 0.2, Activity: 0.7}
	for pi := range probes {
		p := &probes[pi]
		for _, mode := range []prefilter.Mode{prefilter.ModeExact, prefilter.ModePruned, prefilter.ModeLSH} {
			o := MatchOptions{K: 5, Weights: &w, Mode: mode}
			gr, _ := got.RankDetailed(p, o)
			wr, _ := want.RankDetailed(p, o)
			if !reflect.DeepEqual(gr, wr) {
				t.Fatalf("probe %d mode %v: rank diverges\ngot  %v\nwant %v", pi, mode, gr, wr)
			}
		}
		cands := want.Rank(p, 5)
		if gre, wre := got.Rescore(p, cands), want.Rescore(p, cands); !reflect.DeepEqual(gre, wre) {
			t.Fatalf("probe %d: rescore diverges\ngot  %v\nwant %v", pi, gre, wre)
		}
	}
	gall, gerr := got.MatchAll(context.Background(), probes)
	wall, werr := want.MatchAll(context.Background(), probes)
	if gerr != nil || werr != nil {
		t.Fatalf("MatchAll errors: %v / %v", gerr, werr)
	}
	if !reflect.DeepEqual(gall, wall) {
		t.Fatal("MatchAll output diverges")
	}
}

// TestIncrementalBuildBitIdentical: Options.Incremental must not change a
// single output bit — it only retains extra state.
func TestIncrementalBuildBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7100))
	known, probes := randomWorld(rng, 40)
	opts := DefaultOptions()
	opts.Workers = 3
	plain, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Incremental = true
	inc, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchersEquivalent(t, inc, plain, probes)
}

// TestStateRoundTrip: save → load must reassemble a matcher whose output
// is bit-identical, including pre-built LSH operating points, and the
// loaded matcher must itself support State and Fold.
func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7200))
	known, probes := randomWorld(rng, 45)
	opts := DefaultOptions()
	opts.Workers = 2
	opts.Incremental = true
	m, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Touch the LSH path so the cache has an entry to persist.
	m.RankDetailed(&probes[0], MatchOptions{K: 3, Mode: prefilter.ModeLSH})

	st, err := m.State()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := NewMatcherFromState(m.Subjects(), st)
	if err != nil {
		t.Fatal(err)
	}
	assertMatchersEquivalent(t, loaded, m, probes)

	// The loaded matcher must be able to snapshot again and fold deltas.
	if _, err := loaded.State(); err != nil {
		t.Fatalf("State on loaded matcher: %v", err)
	}
	if _, err := loaded.Fold(context.Background(), known[:1]); err != nil {
		t.Fatalf("Fold on loaded matcher: %v", err)
	}
}

// TestStateRejectsMismatchedSubjects: a subject list that does not match
// the snapshot's geometry must error, not build a silently wrong index.
func TestStateRejectsMismatchedSubjects(t *testing.T) {
	rng := rand.New(rand.NewSource(7250))
	known, _ := randomWorld(rng, 10)
	opts := DefaultOptions()
	opts.Incremental = true
	m, err := NewMatcher(known, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.State()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMatcherFromState(known[:len(known)-1], st); err == nil {
		t.Error("truncated subject list accepted")
	}
	bad := st
	bad.FwdVal = append([][]float32{st.FwdVal[0][:0]}, st.FwdVal[1:]...)
	if _, err := NewMatcherFromState(known, bad); err == nil {
		t.Error("forward-list length mismatch accepted")
	}
}

// TestNonIncrementalRefusesStateAndFold pins the guard error.
func TestNonIncrementalRefusesStateAndFold(t *testing.T) {
	rng := rand.New(rand.NewSource(7300))
	known, _ := randomWorld(rng, 8)
	m, err := NewMatcher(known, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.State(); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("State error = %v, want ErrNotIncremental", err)
	}
	if _, err := m.Fold(context.Background(), known[:1]); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("Fold error = %v, want ErrNotIncremental", err)
	}
}

// TestFoldMatchesRebuild is the delta-apply equivalence property: across
// random worlds, folding updated and brand-new subjects into a live
// matcher must produce the same outputs as a from-scratch build over the
// updated subject list — the incremental df/TF-IDF maintenance cannot
// drift by even a bit.
func TestFoldMatchesRebuild(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("world%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(7400 + trial)))
			known, probes := randomWorld(rng, 20+rng.Intn(25))
			opts := DefaultOptions()
			opts.Workers = 1 + rng.Intn(3)
			opts.Incremental = true
			base, err := NewMatcher(known, opts)
			if err != nil {
				t.Fatal(err)
			}

			// Mutate a few existing subjects (as a new thread folding into
			// their alias would) and mint a few new ones.
			var changed []Subject
			for _, i := range rng.Perm(len(known))[:2+rng.Intn(3)] {
				s := known[i]
				s.Text += " fresh posts folded into the corpus after the snapshot"
				changed = append(changed, s)
			}
			for j := 0; j < 1+rng.Intn(3); j++ {
				s := Subject{Name: fmt.Sprintf("newcomer%02d", j)}
				if rng.Intn(4) > 0 {
					s.Text = "brand new vendor account shipping quality product with tracking " + fmt.Sprintf("nw%dq", j)
				}
				changed = append(changed, s)
			}

			folded, err := base.Fold(context.Background(), changed)
			if err != nil {
				t.Fatal(err)
			}

			// Reference: full rebuild over the updated, name-sorted list.
			byName := make(map[string]int, len(known))
			updated := append([]Subject(nil), known...)
			for i := range updated {
				byName[updated[i].Name] = i
			}
			for _, c := range changed {
				if i, ok := byName[c.Name]; ok {
					updated[i] = c
				} else {
					byName[c.Name] = len(updated)
					updated = append(updated, c)
				}
			}
			sort.SliceStable(updated, func(a, b int) bool { return updated[a].Name < updated[b].Name })
			rebuilt, err := NewMatcher(updated, opts)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(folded.Subjects(), rebuilt.Subjects()) {
				t.Fatal("folded subject list diverges from rebuild")
			}
			assertMatchersEquivalent(t, folded, rebuilt, probes)

			// And the fold must not have disturbed the matcher it came from.
			prev, err := NewMatcher(known, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchersEquivalent(t, base, prev, probes[:2])
		})
	}
}
