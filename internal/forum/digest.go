package forum

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// DigestJSONL returns the SHA-256 of the dataset's canonical JSONL
// serialisation (WriteJSONL's alias-by-alias, message-by-message order).
// Two datasets digest equal iff they serialise byte-identically, which is
// what run manifests pin so a reproduction can prove it ran on the same
// corpus.
func DigestJSONL(d *Dataset) (string, error) {
	h := sha256.New()
	if err := WriteJSONL(h, d); err != nil {
		return "", fmt.Errorf("forum: digest: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
