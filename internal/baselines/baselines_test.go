package baselines

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"darklight/internal/attribution"
)

// distinctSubjects builds n subjects, each with a private vocabulary so
// both baselines can separate them, plus a disjoint probe half per author.
func distinctSubjects(n, words int) (known, probes []attribution.Subject) {
	common := strings.Fields("the a of and to in for with on at it is was be this that")
	for i := 0; i < n; i++ {
		private := []string{
			fmt.Sprintf("qq%dzz", i), fmt.Sprintf("ww%dxx", i), fmt.Sprintf("ee%dcc", i),
		}
		gen := func(seed int64) string {
			r := rand.New(rand.NewSource(seed))
			var b strings.Builder
			for w := 0; w < words; w++ {
				if r.Float64() < 0.4 {
					b.WriteString(private[r.Intn(len(private))])
				} else {
					b.WriteString(common[r.Intn(len(common))])
				}
				b.WriteByte(' ')
			}
			return b.String()
		}
		name := fmt.Sprintf("user%02d", i)
		known = append(known, attribution.Subject{Name: name, Text: gen(int64(i)*3 + 1)})
		probes = append(probes, attribution.Subject{Name: name, Text: gen(int64(i)*3 + 2)})
	}
	return known, probes
}

func TestStandardSelfAttribution(t *testing.T) {
	known, probes := distinctSubjects(10, 250)
	std := NewStandard(known, 2)
	hits := 0
	for i := range probes {
		ranked := std.Match(&probes[i])
		if len(ranked) != len(known) {
			t.Fatalf("Match returned %d candidates", len(ranked))
		}
		if ranked[0].Name == probes[i].Name {
			hits++
		}
	}
	if hits < 8 {
		t.Errorf("standard baseline self-attribution hits = %d of 10", hits)
	}
}

func TestStandardPredictAligned(t *testing.T) {
	known, probes := distinctSubjects(6, 200)
	std := NewStandard(known, 2)
	preds, err := std.Predict(context.Background(), probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(probes) {
		t.Fatalf("preds = %d", len(preds))
	}
	for i := range preds {
		if preds[i].Unknown != probes[i].Name {
			t.Error("predictions must align with input order")
		}
		if preds[i].Score < -1e-9 || preds[i].Score > 1+1e-9 {
			t.Errorf("score %v out of range", preds[i].Score)
		}
	}
}

func TestCharFreeSpace4Grams(t *testing.T) {
	counts := charFreeSpace4Grams("ab cd ef")
	// Space-free text is "abcdef": grams abcd, bcde, cdef.
	if len(counts) != 3 {
		t.Fatalf("got %d grams: %v", len(counts), counts)
	}
	for _, g := range []string{"abcd", "bcde", "cdef"} {
		if counts[g] != 1 {
			t.Errorf("missing gram %q", g)
		}
	}
	if got := charFreeSpace4Grams("abc"); len(got) != 0 {
		t.Error("short text must produce no grams")
	}
}

func TestKoppelSelfAttribution(t *testing.T) {
	known, probes := distinctSubjects(8, 250)
	cfg := DefaultKoppelConfig()
	cfg.Iterations = 20 // keep the test fast; 100 in production
	cfg.Workers = 2
	k := NewKoppel(known, cfg)
	preds, err := k.Predict(context.Background(), probes)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := range preds {
		if preds[i].Candidate == probes[i].Name {
			hits++
		}
		if preds[i].Score < 0 || preds[i].Score > 1 {
			t.Errorf("vote share %v out of range", preds[i].Score)
		}
	}
	if hits < 6 {
		t.Errorf("koppel self-attribution hits = %d of 8", hits)
	}
}

func TestKoppelVoteSharesSumToOne(t *testing.T) {
	known, probes := distinctSubjects(5, 200)
	cfg := DefaultKoppelConfig()
	cfg.Iterations = 10
	cfg.Workers = 1
	k := NewKoppel(known, cfg)
	shares, err := k.VoteAll(context.Background(), probes[:1])
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range shares[0] {
		total += s
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("vote shares sum to %v (every iteration casts one vote)", total)
	}
}

func TestKoppelSubspaceDeterministic(t *testing.T) {
	known, _ := distinctSubjects(3, 100)
	cfg := DefaultKoppelConfig()
	cfg.Iterations = 5
	k1 := NewKoppel(known, cfg)
	k2 := NewKoppel(known, cfg)
	for it := 0; it < 5; it++ {
		for idx := uint32(0); idx < 2000; idx += 37 {
			if k1.inSubspace(it, idx) != k2.inSubspace(it, idx) {
				t.Fatal("subspace membership must be deterministic in the seed")
			}
		}
	}
	// Roughly 40% of features selected.
	in := 0
	const total = 5000
	for idx := uint32(0); idx < total; idx++ {
		if k1.inSubspace(0, idx) {
			in++
		}
	}
	frac := float64(in) / total
	if frac < 0.35 || frac > 0.45 {
		t.Errorf("subspace fraction = %v, want ≈0.40", frac)
	}
}

func TestKoppelMatchSortsCandidates(t *testing.T) {
	known, probes := distinctSubjects(4, 150)
	cfg := DefaultKoppelConfig()
	cfg.Iterations = 8
	k := NewKoppel(known, cfg)
	ranked := k.Match(&probes[0])
	if len(ranked) != 4 {
		t.Fatalf("ranked %d", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Error("candidates must be sorted by vote share")
		}
	}
}

func TestBaselinesCancelPromptly(t *testing.T) {
	known, probes := distinctSubjects(4, 150)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	std := NewStandard(known, 2)
	if _, err := std.Predict(ctx, probes); err == nil {
		t.Error("standard: cancelled context must error")
	}
	cfg := DefaultKoppelConfig()
	cfg.Iterations = 50
	k := NewKoppel(known, cfg)
	if _, err := k.Predict(ctx, probes); err == nil {
		t.Error("koppel: cancelled context must error")
	}
}
