// Out-of-scope package: maporder must stay silent here.
package free

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
