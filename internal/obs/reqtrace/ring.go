package reqtrace

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"darklight/internal/obs"
)

// Trace is one retained request: identity, outcome, why sampling kept it,
// and the full span tree. Served verbatim at /debug/traces/{trace_id}.
type Trace struct {
	TraceID   string         `json:"trace_id"`
	RequestID string         `json:"request_id"`
	ParentID  string         `json:"parent_id,omitempty"`
	Endpoint  string         `json:"endpoint"`
	Method    string         `json:"method"`
	Code      int            `json:"code"`
	DurNS     int64          `json:"dur_ns"`
	Bytes     int            `json:"bytes,omitempty"`
	Sampled   string         `json:"sampled"` // inbound | sample | slow
	Spans     []obs.SpanData `json:"spans"`
}

// Summary is the listing form of a retained trace — everything but the
// span tree, so /debug/traces stays cheap to render and read.
type Summary struct {
	TraceID   string `json:"trace_id"`
	RequestID string `json:"request_id"`
	Endpoint  string `json:"endpoint"`
	Method    string `json:"method"`
	Code      int    `json:"code"`
	DurNS     int64  `json:"dur_ns"`
	Sampled   string `json:"sampled"`
}

// traceRing is a bounded circular buffer of retained traces with an id
// index. Oldest entries fall off; a re-used trace id (a client replaying
// a traceparent) resolves to the newest occurrence.
type traceRing struct {
	mu    sync.Mutex
	buf   []*Trace // fixed capacity; nil slots not yet filled
	next  int      // slot the next add overwrites
	total uint64   // traces retained over the ring's lifetime
	byID  map[string]int
}

func (r *traceRing) init(capacity int) {
	r.buf = make([]*Trace, capacity)
	r.byID = make(map[string]int, capacity)
}

func (r *traceRing) add(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old := r.buf[r.next]; old != nil && r.byID[old.TraceID] == r.next {
		delete(r.byID, old.TraceID)
	}
	r.buf[r.next] = t
	r.byID[t.TraceID] = r.next
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

func (r *traceRing) get(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot, ok := r.byID[id]; ok {
		return r.buf[slot]
	}
	return nil
}

// list returns retained traces newest-first.
func (r *traceRing) list() (out []*Trace, total uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= len(r.buf); i++ {
		slot := (r.next - i + len(r.buf)) % len(r.buf)
		if r.buf[slot] == nil {
			break
		}
		out = append(out, r.buf[slot])
	}
	return out, r.total
}

// listBody is the /debug/traces response: how many traces sampling has
// retained ever, how many the ring still holds, and their summaries
// newest-first.
type listBody struct {
	Retained uint64    `json:"retained"`
	Held     int       `json:"held"`
	Traces   []Summary `json:"traces"`
}

// Handler serves the trace ring. Mount it at /debug/traces: the bare path
// lists summaries newest-first, /debug/traces/{trace_id} returns one full
// span tree (404 when the id fell off the ring or never existed).
func (c *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		rest := strings.TrimPrefix(req.URL.Path, "/debug/traces")
		rest = strings.Trim(rest, "/")
		if rest == "" {
			traces, total := c.ring.list()
			body := listBody{Retained: total, Held: len(traces), Traces: make([]Summary, 0, len(traces))}
			for _, t := range traces {
				body.Traces = append(body.Traces, Summary{
					TraceID:   t.TraceID,
					RequestID: t.RequestID,
					Endpoint:  t.Endpoint,
					Method:    t.Method,
					Code:      t.Code,
					DurNS:     t.DurNS,
					Sampled:   t.Sampled,
				})
			}
			writeDebugJSON(w, http.StatusOK, body)
			return
		}
		if t := c.ring.get(rest); t != nil {
			writeDebugJSON(w, http.StatusOK, t)
			return
		}
		http.Error(w, "trace not found (expired from ring or never sampled)", http.StatusNotFound)
	})
}

func writeDebugJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errdrop a failed write means the debug client hung up; nothing to do
	enc.Encode(v)
}
