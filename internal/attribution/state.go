package attribution

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"

	"darklight/internal/features"
	"darklight/internal/prefilter"
)

// ErrNotIncremental is returned by State and Fold on a matcher built
// without Options.Incremental: it dropped the corpus counters and cached
// extractions those operations need.
var ErrNotIncremental = errors.New("attribution: matcher was not built with Options.Incremental")

// IndexState is everything the index pass computed, as value types: the
// frozen vocabulary and the corpus counters it was cut from, each known
// subject's cached extraction, the dense blocks, the forward gram index
// (from which the inverted posting lists are reconstructed), the
// pre-filter contribution caps, and any LSH operating points already
// built. Subjects themselves are not included — callers persist them
// alongside and pass them back to NewMatcherFromState.
//
// The state shares backing arrays with the matcher it came from; treat it
// as read-only.
type IndexState struct {
	Opts       Options
	Vocab      features.VocabState
	Stats      features.BuilderState
	Docs       []*features.SortedDoc
	Mask       []uint8
	Freqs      [][]float64
	Acts       [][]float64
	FwdIdx     [][]uint32
	FwdVal     [][]float32
	MaxContrib []float32
	LSH        []prefilter.LSHTable
}

// State snapshots the index for persistence. Only incremental matchers
// can be snapshotted.
func (m *Matcher) State() (IndexState, error) {
	if m.docs == nil {
		return IndexState{}, ErrNotIncremental
	}
	st := IndexState{
		Opts:       m.opts,
		Vocab:      m.vocab.State(),
		Stats:      m.stats.State(),
		Docs:       m.docs,
		Mask:       m.mask,
		Freqs:      m.freqs,
		Acts:       m.acts,
		FwdIdx:     m.fwdIdx,
		FwdVal:     m.fwdVal,
		MaxContrib: m.maxContrib.Values(),
	}
	// The LSH cache fills lazily per operating point queried; emit the
	// built ones in a deterministic order so the serialised form is too.
	m.lshMu.Lock()
	for _, l := range m.lshIdx {
		st.LSH = append(st.LSH, l.Table())
	}
	m.lshMu.Unlock()
	sort.Slice(st.LSH, func(a, b int) bool {
		pa, pb := st.LSH[a].Params, st.LSH[b].Params
		if pa.Bands != pb.Bands {
			return pa.Bands < pb.Bands
		}
		if pa.Rows != pb.Rows {
			return pa.Rows < pb.Rows
		}
		return pa.Seed < pb.Seed
	})
	return st, nil
}

// NewMatcherFromState reassembles a matcher from a snapshot without
// re-running either build pass — the cold-start path. known must be the
// exact subject slice the state was saved against (same order); Rank,
// Rescore, Match, and MatchAll output is bit-identical to the matcher
// State was called on.
func NewMatcherFromState(known []Subject, st IndexState) (*Matcher, error) {
	opts := st.Opts.withDefaults()
	if err := validateOptions(opts); err != nil {
		return nil, err
	}
	n := len(known)
	if len(st.Docs) != n || len(st.Mask) != n || len(st.Freqs) != n ||
		len(st.Acts) != n || len(st.FwdIdx) != n || len(st.FwdVal) != n {
		return nil, fmt.Errorf("attribution: index state sized for %d subjects, got %d (docs %d mask %d freqs %d acts %d fwd %d/%d)",
			len(st.Mask), n, len(st.Docs), len(st.Mask), len(st.Freqs), len(st.Acts), len(st.FwdIdx), len(st.FwdVal))
	}
	for i := range st.FwdIdx {
		if len(st.FwdIdx[i]) != len(st.FwdVal[i]) {
			return nil, fmt.Errorf("attribution: index state: subject %d forward lists disagree (%d ids, %d values)", i, len(st.FwdIdx[i]), len(st.FwdVal[i]))
		}
	}
	vocab, err := features.NewVocabularyFromState(st.Vocab)
	if err != nil {
		return nil, err
	}
	m := &Matcher{
		opts:       opts,
		known:      known,
		vocab:      vocab,
		mask:       st.Mask,
		freqs:      st.Freqs,
		acts:       st.Acts,
		fwdIdx:     st.FwdIdx,
		fwdVal:     st.FwdVal,
		maxContrib: prefilter.MaxContribFromValues(st.MaxContrib),
	}
	if opts.Incremental {
		m.stats = features.NewVocabBuilderFromState(st.Stats)
		m.docs = st.Docs
	}

	// Rebuild the inverted index from the forward lists. Filling per-gram
	// lists in ascending subject order reproduces exactly the posting
	// order of a serial build — the order stage 1 accumulates float32
	// dots in. Gram ids are vocabulary indices, so the inversion runs on
	// dense arrays and one flat posting arena; the map is only assembled
	// at the end, one insert per distinct gram rather than per posting
	// (the difference is most of a large snapshot's load time).
	dims := uint32(vocab.NumWordGrams() + vocab.NumCharGrams())
	counts := make([]uint32, dims)
	total := 0
	distinct := 0
	for _, ids := range st.FwdIdx {
		for _, idx := range ids {
			if idx >= dims {
				return nil, fmt.Errorf("attribution: index state: gram id %d outside the %d-gram vocabulary", idx, dims)
			}
			if counts[idx] == 0 {
				distinct++
			}
			counts[idx]++
			total++
		}
	}
	arena := make([]posting, total)
	next := make([]uint32, dims)
	off := uint32(0)
	for idx, c := range counts {
		next[idx] = off
		off += c
	}
	for i, ids := range st.FwdIdx {
		vals := st.FwdVal[i]
		for k, idx := range ids {
			arena[next[idx]] = posting{subject: i, value: vals[k]}
			next[idx]++
		}
	}
	m.postings = make(map[uint32][]posting, distinct)
	off = 0
	for idx, c := range counts {
		if c == 0 {
			continue
		}
		m.postings[uint32(idx)] = arena[off : off+c : off+c]
		off += c
	}

	// Pre-install persisted LSH operating points; further points still
	// build lazily on first use.
	m.lshIdx = make(map[prefilter.LSHParams]*prefilter.LSH, len(st.LSH))
	for _, t := range st.LSH {
		m.lshIdx[t.Params.WithDefaults()] = prefilter.LSHFromTable(t)
	}

	m.byName = make(map[string]int, n)
	texts := make([]string, n)
	for i := range known {
		m.byName[known[i].Name] = i
		texts[i] = known[i].Text
	}
	m.finalDocs = features.NewDocCache(opts.Final, texts)
	m.sameExtract = opts.Reduction.SameExtraction(opts.Final)
	mKnown.Set(float64(n))
	mVocabSize.Set(float64(m.vocab.NumWordGrams() + m.vocab.NumCharGrams()))
	mPostings.Set(float64(len(m.postings)))
	return m, nil
}

// Fold returns a new matcher with the changed subjects applied — updated
// in place when the name is already known, appended otherwise — without
// re-extracting or re-counting the unchanged corpus. The old counters are
// subtracted and the new ones added (plain integer sums, so the folded
// counters equal a from-scratch count of the new corpus), the vocabulary
// is re-cut, and only the index pass re-runs, from cached extractions.
// The result is bit-identical to a full rebuild over the updated subject
// list; m itself is never mutated and keeps serving.
//
// The known set stays sorted by name, matching the canonical order
// BuildSubjects produces from a name-sorted dataset.
func (m *Matcher) Fold(ctx context.Context, changed []Subject) (*Matcher, error) {
	if m.docs == nil {
		return nil, ErrNotIncremental
	}
	stats := m.stats.Clone()
	known := slices.Clone(m.known)
	docs := slices.Clone(m.docs)
	idx := make(map[string]int, len(known))
	for i := range known {
		idx[known[i].Name] = i
	}
	for _, c := range changed {
		sd := features.Extract(c.Text, m.opts.Reduction).Sorted()
		if i, ok := idx[c.Name]; ok {
			stats.RemoveSorted(docs[i])
			stats.AddSorted(sd)
			known[i] = c
			docs[i] = sd
		} else {
			idx[c.Name] = len(known)
			known = append(known, c)
			docs = append(docs, sd)
			stats.AddSorted(sd)
		}
	}
	order := make([]int, len(known))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return known[order[a]].Name < known[order[b]].Name })
	sortedKnown := make([]Subject, len(known))
	sortedDocs := make([]*features.SortedDoc, len(known))
	for j, i := range order {
		sortedKnown[j] = known[i]
		sortedDocs[j] = docs[i]
	}
	return newMatcherFromDocs(ctx, sortedKnown, sortedDocs, stats, stats.Build(), m.opts)
}

// Subjects exposes the known subjects in index order. The slice is the
// matcher's own; callers must not mutate it.
func (m *Matcher) Subjects() []Subject { return m.known }

// Options reports the (defaulted) options the matcher was built with.
func (m *Matcher) Options() Options { return m.opts }
