// Command darklint runs the project's own static analyzers — the
// machine-checked half of the determinism and durability contracts the
// equivalence tests pin at runtime. It is a CI gate: any unsuppressed
// diagnostic fails the build.
//
// Usage:
//
//	go run ./cmd/darklint ./...
//	go run ./cmd/darklint -only=wallclock,errdrop ./internal/...
//	go run ./cmd/darklint -wallclock.allow=internal/scraper,cmd ./...
//	go run ./cmd/darklint -json ./... > darklint.json
//
// Analyzers: atomicmix (no plain access to variables touched by
// sync/atomic), detrand (no global/time-seeded randomness in
// deterministic packages), errdrop (no silently discarded errors),
// fsyncrename (fsync before rename on every path), goleak (goroutines
// in long-lived packages must have a reachable stop signal), lockbalance
// (every Lock released on every path, no double-lock), maporder (no
// map-iteration order leaking into output), utcenforce (UTC-pinned time
// construction where the activity profiles need it), wallclock
// (time.Now only on the allowlist). Suppress one finding with
// `//lint:ignore <analyzer> <reason>` on or above the offending line.
//
// With -json the findings are emitted as a JSON array of
// {file,line,col,analyzer,message,suppressed} objects — suppressed
// findings are included (flagged true) so tooling can audit waivers,
// but only unsuppressed findings fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"darklight/internal/analysis"
	"darklight/internal/analysis/load"
	"darklight/internal/analysis/passes/atomicmix"
	"darklight/internal/analysis/passes/detrand"
	"darklight/internal/analysis/passes/errdrop"
	"darklight/internal/analysis/passes/fsyncrename"
	"darklight/internal/analysis/passes/goleak"
	"darklight/internal/analysis/passes/lockbalance"
	"darklight/internal/analysis/passes/maporder"
	"darklight/internal/analysis/passes/utcenforce"
	"darklight/internal/analysis/passes/wallclock"
)

var analyzers = []*analysis.Analyzer{
	atomicmix.Analyzer,
	detrand.Analyzer,
	errdrop.Analyzer,
	fsyncrename.Analyzer,
	goleak.Analyzer,
	lockbalance.Analyzer,
	maporder.Analyzer,
	utcenforce.Analyzer,
	wallclock.Analyzer,
}

// finding is one diagnostic; the JSON shape is the -json contract.
type finding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	os.Exit(runLint(os.Args[1:], os.Stdout, os.Stderr))
}

// runLint is main, factored for the golden test: it parses args, runs
// the selected analyzers, writes findings to stdout, and returns the
// process exit code (0 clean, 1 findings, 2 usage/load error).
func runLint(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("darklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only    = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		list    = fs.Bool("list", false, "list analyzers and exit")
		dir     = fs.String("C", "", "module root to analyze (default: current directory)")
		verbose = fs.Bool("v", false, "report per-package progress and suppressed-finding counts")
		jsonOut = fs.Bool("json", false, "emit findings as JSON (includes suppressed findings)")
	)
	for _, a := range analyzers {
		a := a
		a.Flags.VisitAll(func(f *flag.Flag) {
			fs.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analyzers {
			printf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected := analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				printf(stderr, "darklint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Dir: *dir}, patterns...)
	if err != nil {
		printf(stderr, "darklint: %v\n", err)
		return 2
	}

	var findings []finding
	for _, pkg := range pkgs {
		if *verbose {
			printf(stderr, "darklint: %s\n", pkg.Path)
		}
		sup := analysis.NewSuppressor(pkg.Fset, pkg.Files)
		for _, a := range selected {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				file := p.Filename
				if rel, err := filepath.Rel(mustGetwd(), file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				findings = append(findings, finding{
					File:       filepath.ToSlash(file),
					Line:       p.Line,
					Col:        p.Column,
					Analyzer:   a.Name,
					Message:    d.Message,
					Suppressed: sup.Suppressed(a.Name, d.Pos),
				})
			}
			if _, err := a.Run(pass); err != nil {
				printf(stderr, "darklint: %s on %s: %v\n", a.Name, pkg.Path, err)
				return 2
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	active, suppressed := 0, 0
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
		} else {
			active++
		}
	}

	if *jsonOut {
		if findings == nil {
			findings = []finding{} // `[]`, not `null`: the contract is an array
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			printf(stderr, "darklint: encoding findings: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			printf(stdout, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if *verbose && suppressed > 0 {
		printf(stderr, "darklint: %d finding(s) suppressed by lint:ignore\n", suppressed)
	}
	if active > 0 {
		printf(stderr, "darklint: %d finding(s) in %d package(s)\n", active, len(pkgs))
		return 1
	}
	return 0
}

// printf writes best-effort diagnostic output. runLint's stdout and
// stderr are os.Stdout/os.Stderr in production and buffers in the
// golden test; neither failure mode is actionable from here.
func printf(w io.Writer, format string, args ...any) {
	//lint:ignore errdrop best-effort diagnostic output to a std stream or test buffer
	fmt.Fprintf(w, format, args...)
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
