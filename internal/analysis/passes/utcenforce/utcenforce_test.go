package utcenforce_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/utcenforce"
)

func TestUTCEnforce(t *testing.T) {
	analysistest.Run(t, "testdata", utcenforce.Analyzer, "internal/timeutil", "other/free")
}
