package attribution

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"darklight/internal/prefilter"
	"darklight/internal/sparse"
)

// Pre-filter scaling benchmarks: the three stage-1 paths over the same
// synthetic index at N ∈ {1k, 10k, 100k}. The worlds are built directly
// from constructed gram blocks — extracting 100k real documents would
// dominate the benchmark setup a thousandfold without changing what is
// measured (the scan itself) — but they reproduce the structure the real
// TF-IDF vectorization gives the index:
//
//   - A small set of near-universal grams (function-word char grams):
//     posting lists ~N long, values ≈ 0 after IDF weighting. The exact
//     scan walks all of them; the pruned walk skips them wholesale
//     because their impact is negligible — this is where sub-linearity
//     comes from on real text.
//   - Discriminative cluster grams: subjects come in clusters of 30
//     sharing ~85% of a 200-term set (gram-set Jaccard ≈ 0.6 within a
//     cluster, ≈ 0.06 across), short posting lists, heavy-tailed values
//     (u⁴, the shape TF-IDF weighting produces). The LSH index drops the
//     weightless universal grams (MinHash floor), so cross-cluster
//     collisions are rare and its scored set is essentially the query's
//     cluster.
//
// Every benchmark reports the mean exactly-scored candidates per query as
// a `cands/op` metric; cmd/benchdiff's prefilter suite records it next to
// ns/op and gates the Exact/Pruned and Exact/LSH ns ratios.

const (
	benchDims        = 65536
	benchClusterSize = 30
	benchBaseTerms   = 200
	benchKeepPct     = 85
	benchExtraTerms  = 12
	benchTopK        = 10
	// Universal grams: ids [0, benchUniversal), each present in a subject
	// with probability benchUniversalPct/100.
	benchUniversal    = 35
	benchUniversalPct = 80
)

type benchWorld struct {
	m     *Matcher
	query blocks
	w     Weights
}

var (
	benchWorlds   = map[int]*benchWorld{}
	benchWorldsMu sync.Mutex
)

// benchSubjectTerms draws one subject's sorted term ids: most of the
// universal head, its cluster's base set thinned to 85%, and a few random
// extras.
func benchSubjectTerms(rng *rand.Rand, base []uint32) []uint32 {
	seen := make(map[uint32]bool, benchBaseTerms)
	for t := uint32(0); t < benchUniversal; t++ {
		if rng.Intn(100) < benchUniversalPct {
			seen[t] = true
		}
	}
	for _, t := range base {
		if rng.Intn(100) < benchKeepPct {
			seen[t] = true
		}
	}
	for i := 0; i < benchExtraTerms; i++ {
		seen[benchUniversal+uint32(rng.Intn(benchDims-benchUniversal))] = true
	}
	terms := make([]uint32, 0, len(seen))
	for t := range seen {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
	return terms
}

// benchVector attaches unit-norm values to a term set. Universal grams
// get near-zero values (IDF of a corpus-universal gram ≈ 0) and the rest
// are heavy-tailed (u⁴), the shape TF-IDF weighting produces: a few
// discriminative grams carry most of a vector's mass and a long tail
// carries almost none. The pruned walk depends on this shape — it walks
// the heavy terms and folds the tail into the bounds — so uniform values
// would benchmark the pre-filter on data unlike anything the pipeline
// produces.
func benchVector(rng *rand.Rand, terms []uint32) sparse.Vector {
	vals := make([]float64, len(terms))
	norm := 0.0
	for i := range vals {
		if terms[i] < benchUniversal {
			vals[i] = 0.00002 + 0.00004*rng.Float64()
		} else {
			u := rng.Float64()
			vals[i] = 0.02 + u*u*u*u
		}
		norm += vals[i] * vals[i]
	}
	norm = math.Sqrt(norm)
	for i := range vals {
		vals[i] /= norm
	}
	return sparse.Vector{Idx: terms, Val: vals}
}

// getBenchWorld builds (and memoises) the synthetic matcher for one N,
// assembling the index structures directly in the shapes the build pass
// produces: subject-ascending postings, forward lists, per-term maxima.
func getBenchWorld(tb testing.TB, n int) *benchWorld {
	tb.Helper()
	benchWorldsMu.Lock()
	defer benchWorldsMu.Unlock()
	if w, ok := benchWorlds[n]; ok {
		return w
	}
	rng := rand.New(rand.NewSource(int64(9000 + n)))
	clusters := (n + benchClusterSize - 1) / benchClusterSize
	bases := make([][]uint32, clusters)
	for c := range bases {
		seen := make(map[uint32]bool, benchBaseTerms)
		for len(seen) < benchBaseTerms {
			seen[benchUniversal+uint32(rng.Intn(benchDims-benchUniversal))] = true
		}
		base := make([]uint32, 0, benchBaseTerms)
		for t := range seen {
			base = append(base, t)
		}
		sort.Slice(base, func(a, b int) bool { return base[a] < base[b] })
		bases[c] = base
	}

	m := &Matcher{
		opts:     Options{K: benchTopK, Prefilter: prefilter.Params{}.WithDefaults()},
		known:    make([]Subject, n),
		postings: make(map[uint32][]posting),
		mask:     make([]uint8, n),
		freqs:    make([][]float64, n),
		acts:     make([][]float64, n),
		fwdIdx:   make([][]uint32, n),
		fwdVal:   make([][]float32, n),
		lshIdx:   make(map[prefilter.LSHParams]*prefilter.LSH),
	}
	mc := prefilter.NewMaxContrib(benchDims)
	for i := 0; i < n; i++ {
		m.known[i] = Subject{Name: fmt.Sprintf("s%06d", i)}
		v := benchVector(rng, benchSubjectTerms(rng, bases[i/benchClusterSize]))
		vals32 := make([]float32, len(v.Val))
		for k, idx := range v.Idx {
			f := float32(v.Val[k])
			vals32[k] = f
			mc.Note(idx, f)
			m.postings[idx] = append(m.postings[idx], posting{subject: i, value: f})
		}
		m.mask[i] = maskGrams
		m.fwdIdx[i] = v.Idx
		m.fwdVal[i] = vals32
	}
	m.maxContrib = mc

	// The query is written in cluster 0's voice, so its true top-k are
	// real near-neighbours, not noise.
	query := blocks{grams: benchVector(rng, benchSubjectTerms(rng, bases[0]))}
	w := &benchWorld{m: m, query: query, w: Weights{Freq: 0.2, Activity: 0.7}}
	benchWorlds[n] = w
	return w
}

// benchSizes skips the 100k world in -short runs (CI smoke uses 1x
// benchtime where even 100k is cheap, but `go test -short -bench` should
// stay snappy).
func benchSizes(b *testing.B) []int {
	if testing.Short() {
		return []int{1000, 10000}
	}
	return []int{1000, 10000, 100000}
}

func benchRank(b *testing.B, n int, run func(w *benchWorld, buf *matchBuffers) prefilter.Stats) {
	w := getBenchWorld(b, n)
	var buf matchBuffers
	scored := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := run(w, &buf)
		scored += st.Scored
	}
	b.ReportMetric(float64(scored)/float64(b.N), "cands/op")
}

func BenchmarkRankExact(b *testing.B) {
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			benchRank(b, n, func(w *benchWorld, buf *matchBuffers) prefilter.Stats {
				_, st := w.m.rankExact(&w.query, benchTopK, w.w, 1, buf)
				return st
			})
		})
	}
}

func BenchmarkRankPruned(b *testing.B) {
	p := prefilter.PrunedParams{}.WithDefaults()
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			benchRank(b, n, func(w *benchWorld, buf *matchBuffers) prefilter.Stats {
				_, st := w.m.rankPruned(&w.query, benchTopK, w.w, 1, buf, p)
				return st
			})
		})
	}
}

func BenchmarkRankLSH(b *testing.B) {
	p := prefilter.LSHParams{}.WithDefaults()
	for _, n := range benchSizes(b) {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			w := getBenchWorld(b, n)
			w.m.lshFor(p) // build outside the timed loop; queries share it
			benchRank(b, n, func(w *benchWorld, buf *matchBuffers) prefilter.Stats {
				_, st := w.m.rankLSH(&w.query, benchTopK, w.w, 1, buf, p)
				return st
			})
		})
	}
}

// TestBenchWorldAgrees sanity-checks the synthetic worlds the benchmarks
// run on: the pruned path must reproduce the exact top-k bit for bit, and
// the LSH path must find the query's cluster (recall >= 0.9 of the true
// top-10 on the smallest world), otherwise the measured speedups would be
// speedups at the wrong answer.
func TestBenchWorldAgrees(t *testing.T) {
	w := getBenchWorld(t, 1000)
	var buf matchBuffers
	exact, est := w.m.rankExact(&w.query, benchTopK, w.w, 1, &buf)
	pruned, pst := w.m.rankPruned(&w.query, benchTopK, w.w, 1, &buf, prefilter.PrunedParams{}.WithDefaults())
	if len(exact) != len(pruned) {
		t.Fatalf("pruned returned %d, exact %d", len(pruned), len(exact))
	}
	for i := range exact {
		if exact[i] != pruned[i] {
			t.Fatalf("pruned diverges at %d: %+v vs %+v", i, pruned[i], exact[i])
		}
	}
	if pst.Scored >= est.Scored {
		t.Errorf("pruned scored %d of %d: no pruning on the bench world", pst.Scored, est.Scored)
	}
	lsh, lst := w.m.rankLSH(&w.query, benchTopK, w.w, 1, &buf, prefilter.LSHParams{}.WithDefaults())
	truth := make(map[string]bool, len(exact))
	for _, s := range exact {
		truth[s.Name] = true
	}
	hits := 0
	for _, s := range lsh {
		if truth[s.Name] {
			hits++
		}
	}
	if hits < 9 {
		t.Errorf("LSH recovered %d/10 of the true top-10 on the bench world", hits)
	}
	if lst.Scored >= len(w.m.known)/4 {
		t.Errorf("LSH scored %d of %d subjects: clusters are not separating", lst.Scored, len(w.m.known))
	}
}
