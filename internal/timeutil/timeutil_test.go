package timeutil

import (
	"testing"
	"time"
)

func TestAlignUTC(t *testing.T) {
	tests := []struct {
		name   string
		local  time.Time
		offset int // minutes
		want   time.Time
	}{
		{
			name:   "no offset",
			local:  time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC),
			offset: 0,
			want:   time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC),
		},
		{
			name:   "EST forum clock",
			local:  time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC),
			offset: -300,
			want:   time.Date(2017, 6, 1, 17, 0, 0, 0, time.UTC),
		},
		{
			name:   "CET forum clock crosses midnight",
			local:  time.Date(2017, 6, 1, 0, 30, 0, 0, time.UTC),
			offset: 60,
			want:   time.Date(2017, 5, 31, 23, 30, 0, 0, time.UTC),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := AlignUTC(tt.local, tt.offset); !got.Equal(tt.want) {
				t.Errorf("AlignUTC = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIsWeekend(t *testing.T) {
	// 2017-07-01 is a Saturday.
	sat := time.Date(2017, 7, 1, 10, 0, 0, 0, time.UTC)
	sun := sat.AddDate(0, 0, 1)
	mon := sat.AddDate(0, 0, 2)
	if !IsWeekend(sat) || !IsWeekend(sun) {
		t.Error("Saturday/Sunday must be weekend")
	}
	if IsWeekend(mon) {
		t.Error("Monday must not be weekend")
	}
}

func TestUSHolidays2017(t *testing.T) {
	cal := USHolidays(2017)
	want := []struct {
		m    time.Month
		d    int
		name string
	}{
		{time.January, 2, "New Year's Day"}, // Jan 1 2017 is a Sunday → observed Monday
		{time.January, 16, "Martin Luther King Jr. Day"},
		{time.February, 20, "Washington's Birthday"},
		{time.May, 29, "Memorial Day"},
		{time.July, 4, "Independence Day"},
		{time.September, 4, "Labor Day"},
		{time.October, 9, "Columbus Day"},
		{time.November, 10, "Veterans Day"}, // Nov 11 2017 is a Saturday → observed Friday
		{time.November, 23, "Thanksgiving Day"},
		{time.December, 25, "Christmas Day"},
	}
	for _, w := range want {
		day := time.Date(2017, w.m, w.d, 12, 0, 0, 0, time.UTC)
		name, ok := cal.Name(day)
		if !ok {
			t.Errorf("%v %d should be a holiday (%s)", w.m, w.d, w.name)
			continue
		}
		if name != w.name {
			t.Errorf("%v %d = %q, want %q", w.m, w.d, name, w.name)
		}
	}
	if cal.Len() != len(want) {
		t.Errorf("calendar has %d holidays, want %d", cal.Len(), len(want))
	}
	if cal.Contains(time.Date(2017, 3, 15, 12, 0, 0, 0, time.UTC)) {
		t.Error("ordinary day flagged as holiday")
	}
}

func TestHolidayCalendarZeroValues(t *testing.T) {
	var nilCal *HolidayCalendar
	if nilCal.Contains(time.Now()) {
		t.Error("nil calendar must contain nothing")
	}
	if nilCal.Len() != 0 {
		t.Error("nil calendar length must be 0")
	}
	var zero HolidayCalendar
	zero.Add(2020, time.May, 1, "May Day")
	if !zero.Contains(time.Date(2020, 5, 1, 3, 0, 0, 0, time.UTC)) {
		t.Error("Add on zero-value calendar must work")
	}
}

func TestNthAndLastWeekday(t *testing.T) {
	// Third Monday of January 2017 is the 16th.
	if got := nthWeekday(2017, time.January, time.Monday, 3); got != 16 {
		t.Errorf("nthWeekday = %d, want 16", got)
	}
	// Last Monday of May 2017 is the 29th.
	if got := lastWeekday(2017, time.May, time.Monday); got != 29 {
		t.Errorf("lastWeekday = %d, want 29", got)
	}
	// First Thursday of June 2017 is the 1st.
	if got := nthWeekday(2017, time.June, time.Thursday, 1); got != 1 {
		t.Errorf("nthWeekday = %d, want 1", got)
	}
}

func TestBinUTC(t *testing.T) {
	a := time.Date(2017, 6, 1, 13, 5, 0, 0, time.UTC)
	b := time.Date(2017, 6, 1, 13, 55, 0, 0, time.UTC)
	c := time.Date(2017, 6, 1, 14, 0, 0, 0, time.UTC)
	if BinUTC(a) != BinUTC(b) {
		t.Error("same hour must share a bin")
	}
	if BinUTC(a) == BinUTC(c) {
		t.Error("different hours must not share a bin")
	}
	if BinUTC(a).Hour != 13 {
		t.Errorf("Hour = %d", BinUTC(a).Hour)
	}
	if got := BinUTC(a).String(); got != "2017-06-01@13h" {
		t.Errorf("String = %q", got)
	}
}

func TestObservedHolidaysShift(t *testing.T) {
	// July 4 2020 is a Saturday → observed Friday July 3.
	cal := USHolidays(2020)
	if !cal.Contains(time.Date(2020, 7, 3, 12, 0, 0, 0, time.UTC)) {
		t.Error("Saturday holiday must be observed on Friday")
	}
	if cal.Contains(time.Date(2020, 7, 4, 12, 0, 0, 0, time.UTC)) {
		t.Error("actual Saturday date must not be listed when observed Friday")
	}
	// July 4 2021 is a Sunday → observed Monday July 5.
	cal21 := USHolidays(2021)
	if !cal21.Contains(time.Date(2021, 7, 5, 12, 0, 0, 0, time.UTC)) {
		t.Error("Sunday holiday must be observed on Monday")
	}
}
