// Quickstart: generate a small synthetic forum population, split prolific
// users into alter-ego pairs (the paper's ground-truth device), and link
// them back together with the full two-stage pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"darklight"
)

func main() {
	// A small world: ~800 Reddit-like aliases before cleaning.
	world, err := darklight.GenerateWorld(darklight.WorldConfig{Seed: 42, Scale: 0.05})
	if err != nil {
		log.Fatal(err)
	}

	pipe := darklight.NewPipeline()

	// 1. Polish: the 12 cleaning steps of §III-C (bots, duplicates, quotes,
	//    PGP keys, non-English messages, spam...).
	report := pipe.Polish(world.Reddit)
	fmt.Println("polishing report:")
	fmt.Print(report.String())

	// 2. Refine: keep aliases with ≥1,500 words and ≥30 usable timestamps.
	refined := pipe.Refine(world.Reddit)
	fmt.Printf("\nrefined dataset: %d aliases\n", refined.Len())

	// 3. Alter-ego ground truth: each prolific alias is split into two
	//    disjoint halves that share the name.
	main_, alterEgos := pipe.SplitAlterEgos(refined)
	fmt.Printf("alter-ego pairs: %d\n", alterEgos.Len())

	// 4. Link the alter-egos back. A correct link is one where the
	//    candidate name equals the unknown name.
	matches, err := pipe.Link(context.Background(), main_, alterEgos)
	if err != nil {
		log.Fatal(err)
	}

	correct, accepted := 0, 0
	for _, m := range matches {
		if !m.Accepted {
			continue
		}
		accepted++
		if m.Unknown == m.Candidate {
			correct++
		}
	}
	fmt.Printf("\naccepted links: %d of %d unknowns\n", accepted, len(matches))
	if accepted > 0 {
		fmt.Printf("precision: %.1f%%   recall: %.1f%%\n",
			100*float64(correct)/float64(accepted),
			100*float64(correct)/float64(len(matches)))
	}
}
