// Package astquery holds the type-resolved AST predicates the darklint
// analyzers share: "is this call rand.Intn from math/rand?", "does this
// expression contain a time.Now() call?", and friends. Everything works
// through go/types objects, so renamed imports and shadowed identifiers
// resolve correctly — a local variable named rand never triggers the
// math/rand rules.
package astquery

import (
	"go/ast"
	"go/types"
)

// PkgFunc returns the package path and name of the package-level function
// a call invokes, or ("", "") when the callee is not a selector on an
// imported package (method calls, local functions, conversions).
func PkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pkgName.Imported().Path(), sel.Sel.Name
}

// IsPkgCall reports whether the call invokes one of the named
// package-level functions of the package with the given import path.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	p, n := PkgFunc(info, call)
	if p != pkgPath {
		return false
	}
	for _, want := range names {
		if n == want {
			return true
		}
	}
	return false
}

// IsPkgSelector reports whether the expression is a direct selection of a
// package-level object (variable, constant) of the given package — e.g.
// time.Local.
func IsPkgSelector(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	return ok && pkgName.Imported().Path() == pkgPath
}

// ContainsPkgCall reports whether the subtree rooted at n contains a call
// to one of the named package-level functions.
func ContainsPkgCall(info *types.Info, n ast.Node, pkgPath string, names ...string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && IsPkgCall(info, call, pkgPath, names...) {
			found = true
			return false
		}
		return true
	})
	return found
}

// MethodCall returns the receiver type and method name of a method call,
// or (nil, "") for anything else.
func MethodCall(info *types.Info, call *ast.CallExpr) (recv types.Type, name string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, ""
	}
	return s.Recv(), sel.Sel.Name
}

// MethodFunc returns the *types.Func a method call invokes (through a
// value or interface receiver), or nil for anything else. The origin
// func carries its defining package, so passes can ask "is this method
// sync.(*Mutex).Lock" without caring what struct embeds the mutex.
func MethodFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	fn, _ := s.Obj().(*types.Func)
	return fn
}

// IsNamed reports whether t (or the pointee, for pointers) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

var errorType = types.Universe.Lookup("error").Type()

// ErrorResults returns the indices of the call's results whose type is
// exactly error. A non-call or valueless expression yields nil.
func ErrorResults(info *types.Info, call *ast.CallExpr) []int {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		var out []int
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				out = append(out, i)
			}
		}
		return out
	default:
		if types.Identical(tv.Type, errorType) {
			return []int{0}
		}
		return nil
	}
}

// ObjectOf resolves an identifier to its object via Uses then Defs.
func ObjectOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// DeclaredOutside reports whether the identifier's object is declared
// outside the span [lo, hi] — used to tell loop-local accumulators from
// state that outlives a map iteration.
func DeclaredOutside(info *types.Info, id *ast.Ident, lo, hi ast.Node) bool {
	obj := ObjectOf(info, id)
	if obj == nil {
		return false
	}
	return obj.Pos() < lo.Pos() || obj.Pos() > hi.End()
}

// BasicKind returns the basic-type kind underlying t, or types.Invalid.
func BasicKind(t types.Type) types.BasicKind {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return types.Invalid
	}
	return b.Kind()
}

// IsFloat reports whether t's underlying type is float32 or float64.
func IsFloat(t types.Type) bool {
	k := BasicKind(t)
	return k == types.Float32 || k == types.Float64
}
