// Package detrand forbids nondeterministic randomness in the packages
// whose output the paper reproduction pins bit-for-bit: alter-ego splits
// (corpus), synthetic worlds (synth), pseudonym tables (anonymize), and
// the experiment harness (experiments, eval). Randomness there must flow
// from an injected *rand.Rand built on a caller-supplied seed — never
// from the process-global generator or a wall-clock seed, either of
// which turns "reproduced the paper" into numbers that drift per run.
package detrand

import (
	"go/ast"

	"darklight/internal/analysis"
	"darklight/internal/analysis/astquery"
)

// DefaultScope lists the deterministic packages (ISSUE 4 tentpole) plus
// the request-tracing layer, whose sampling draws must come from its own
// seeded splitmix64 stream rather than the global generator.
const DefaultScope = "internal/synth,internal/corpus,internal/anonymize,internal/experiments,internal/eval," +
	"internal/prefilter,internal/obs/reqtrace"

// globalFuncs are the package-level functions of math/rand (and /v2)
// that draw from the shared, unseedable-in-tests global source.
var globalFuncs = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
	"Uint32", "Uint64", "Float32", "Float64",
	"ExpFloat64", "NormFloat64", "Perm", "Shuffle", "Read", "Seed",
	// math/rand/v2 spellings.
	"IntN", "Int32", "Int32N", "Int64", "Int64N",
	"Uint", "UintN", "Uint32N", "Uint64N", "N",
}

var scope = analysis.NewScope(DefaultScope)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand functions and wall-clock-seeded sources in deterministic packages; " +
		"randomness must come from an injected, seeded *rand.Rand",
	Run: run,
}

func init() {
	Analyzer.Flags.Var(&scope, "scope", "comma-separated package patterns the check applies to")
}

// containsSourceCtor reports whether any argument of the call invokes a
// math/rand source constructor (which carries its own diagnostic when
// wall-clock seeded).
func containsSourceCtor(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if astquery.ContainsPkgCall(pass.TypesInfo, arg, "math/rand", "NewSource") ||
			astquery.ContainsPkgCall(pass.TypesInfo, arg, "math/rand/v2", "NewPCG", "NewChaCha8") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	if !scope.Matches(pass.Pkg.Path()) {
		return nil, nil
	}
	pass.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		pkg, name := astquery.PkgFunc(pass.TypesInfo, call)
		if pkg != "math/rand" && pkg != "math/rand/v2" {
			return
		}
		for _, f := range globalFuncs {
			if name == f {
				pass.Reportf(call.Pos(),
					"package-level math/rand call rand.%s uses the global source; take a seeded *rand.Rand instead", name)
				return
			}
		}
		if name == "New" || name == "NewSource" || name == "NewPCG" || name == "NewChaCha8" {
			// rand.New(rand.NewSource(time.Now()…)) reports once, on the
			// inner source constructor.
			if name == "New" && containsSourceCtor(pass, call) {
				return
			}
			if astquery.ContainsPkgCall(pass.TypesInfo, call, "time", "Now") {
				pass.Reportf(call.Pos(),
					"rand.%s seeded from time.Now() is not reproducible; inject the seed (e.g. Options.Seed)", name)
			}
		}
	})
	return nil, nil
}
