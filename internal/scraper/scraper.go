// Package scraper crawls a darkweb-style forum into a dataset. It is the
// data-collection stage of the paper (§III-B): board index → thread
// listings → paginated posts, with the defensive behaviours scraping a
// hidden service demands — threads fan out over a bounded worker pool
// that shares one politeness rate limiter, transient failures (5xx,
// timeouts, torn connections, 429/503 with Retry-After) retry with
// capped jittered backoff while permanent ones (other 4xx) fail fast,
// completed threads are journaled to a JSONL checkpoint so an
// interrupted crawl resumes without refetching, and a thread that stays
// broken is reported in the error summary instead of aborting the crawl.
package scraper

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"darklight/internal/forum"
	"darklight/internal/obs"
)

// Crawl metrics. Requests, retries, and failures are event counts; the
// backoff histogram observes the computed delay — the retry policy's
// output, never a measured wait — so a replayed fault sequence exposes
// identical series.
var (
	mRequests    = obs.Default().Counter("scraper_requests_total", "HTTP requests issued")
	mRetries     = obs.Default().CounterVec("scraper_retries_total", "retry attempts by cause class", "class")
	mFailures    = obs.Default().CounterVec("scraper_failures_total", "crawl units abandoned, by failure class", "class")
	mBackoff     = obs.Default().Histogram("scraper_backoff_seconds", "computed backoff delays before each retry", []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30})
	mRetryAfter  = obs.Default().Counter("scraper_retry_after_total", "backoff delays dictated by a Retry-After header")
	mResumed     = obs.Default().Counter("scraper_threads_resumed_total", "threads restored from the checkpoint journal")
	mCkptAppends = obs.Default().Counter("scraper_checkpoint_appends_total", "thread records appended to the checkpoint journal")
	mCkptCompact = obs.Default().Counter("scraper_checkpoint_compactions_total", "journal rewrites that dropped a torn trailing record")
)

// NoRetries configures Options.MaxRetries for zero retry attempts (the
// zero value of MaxRetries selects the default instead).
const NoRetries = -1

// Options configure a crawl.
type Options struct {
	// RequestInterval is the minimum delay between requests (politeness).
	// The interval is global: all workers share one rate limiter.
	RequestInterval time.Duration
	// MaxRetries bounds retry attempts per page (default 4). Any negative
	// value — use NoRetries — disables retries entirely.
	MaxRetries int
	// BackoffBase is the initial retry delay, doubled per attempt with
	// ±50% jitter (default 100ms).
	BackoffBase time.Duration
	// BackoffMax caps any single retry delay, including delays requested
	// by a Retry-After header (default 10s).
	BackoffMax time.Duration
	// JitterSeed pins the backoff-jitter RNG for reproducible retry
	// schedules (fault tests, replayed crawls). Zero seeds from the wall
	// clock: jitter exists to decorrelate retries between runs, so
	// nondeterminism is the production default.
	JitterSeed int64
	// Workers is the number of threads crawled concurrently (default 4).
	Workers int
	// MaxPagesPerThread bounds deep threads (0 = unlimited).
	MaxPagesPerThread int
	// Boards restricts the crawl to the listed boards (nil = all).
	Boards []string
	// CheckpointPath, when set, names a JSONL journal of completed
	// threads. A crawl finding an existing journal skips every thread
	// recorded in it and splices the journaled posts into the result, so
	// an interrupted crawl resumes where it stopped.
	CheckpointPath string
	// Client overrides the HTTP client (default http.DefaultClient with a
	// 30 s timeout).
	Client *http.Client
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	switch {
	case o.MaxRetries == 0:
		o.MaxRetries = 4
	case o.MaxRetries < 0:
		o.MaxRetries = 0
	}
	if o.BackoffBase == 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 10 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// Stats summarise a crawl.
type Stats struct {
	Requests int
	Retries  int
	Boards   int
	Threads  int
	Posts    int
	// Resumed counts threads restored from the checkpoint journal
	// instead of being fetched.
	Resumed int
	// Failed counts crawl units (boards or threads) abandoned after the
	// retry policy gave up; see Scraper.Errors.
	Failed int
}

// Failure classes for CrawlError.Class and scraper_failures_total.
const (
	// ClassTransientExhausted marks a unit abandoned after the retry
	// policy ran out of attempts on transient failures (5xx, 408, 429,
	// network errors).
	ClassTransientExhausted = "transient-exhausted"
	// ClassPermanent marks a unit that failed fast on a non-retryable 4xx.
	ClassPermanent = "permanent"
	// ClassInternal marks everything else (malformed pages, parse errors).
	ClassInternal = "internal"
)

// classOf derives a CrawlError's class from its wrapped sentinel.
func classOf(err error) string {
	switch {
	case errors.Is(err, errGiveUp):
		return ClassTransientExhausted
	case errors.Is(err, errPermanent):
		return ClassPermanent
	default:
		return ClassInternal
	}
}

// CrawlError records one crawl unit that was abandoned after the retry
// policy gave up. Exactly one of Board/Thread is set: Board for a board
// whose thread listing could not be fetched, Thread for a thread whose
// pages could not.
type CrawlError struct {
	Board  string
	Thread string
	// Class distinguishes how the unit failed — ClassTransientExhausted,
	// ClassPermanent, or ClassInternal. It is derived from Err when the
	// error is recorded, so Errors() and scraper_failures_total{class}
	// always agree.
	Class string
	Err   error
}

func (e CrawlError) String() string {
	class := e.Class
	if class == "" {
		class = classOf(e.Err)
	}
	if e.Board != "" {
		return fmt.Sprintf("board %q [%s]: %v", e.Board, class, e.Err)
	}
	return fmt.Sprintf("thread %q [%s]: %v", e.Thread, class, e.Err)
}

// Scraper crawls one forum base URL. The exported methods are safe for
// concurrent use by the crawl workers; run one Scrape at a time.
type Scraper struct {
	base string
	opts Options

	mu    sync.Mutex // guards stats, last, rng, errs, and checkpoint appends
	stats Stats
	last  time.Time
	rng   *rand.Rand
	errs  []CrawlError
	ckpt  io.Writer // open journal during Scrape, nil otherwise
}

// New returns a scraper for the forum at base (e.g. "http://127.0.0.1:8989").
func New(base string, opts Options) *Scraper {
	opts = opts.withDefaults()
	seed := opts.JitterSeed
	if seed == 0 {
		// The one sanctioned wall-clock seed in the repository: backoff
		// jitter must differ between runs to spread retry load, and
		// internal/scraper is on the darklint wallclock/detrand allowlist
		// for exactly this site. Tests pin Options.JitterSeed instead.
		seed = time.Now().UnixNano()
	}
	return &Scraper{
		base: strings.TrimRight(base, "/"),
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// Stats returns crawl statistics (valid after Scrape).
func (s *Scraper) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Errors returns the per-unit failure summary of the last Scrape: every
// board listing or thread the crawl gave up on, sorted for determinism.
// Empty means the crawl was complete.
func (s *Scraper) Errors() []CrawlError {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]CrawlError(nil), s.errs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Board != out[j].Board {
			return out[i].Board < out[j].Board
		}
		return out[i].Thread < out[j].Thread
	})
	return out
}

// Scrape crawls the whole forum and groups posts into a dataset. Threads
// that stay unreachable after retries are skipped and reported via
// Errors — the partial dataset is still returned. Scrape fails outright
// only when the board index itself is unreachable or the context is
// cancelled; a cancelled crawl leaves its checkpoint journal behind for
// the next run to resume from.
func (s *Scraper) Scrape(ctx context.Context, name string, platform forum.Platform) (*forum.Dataset, error) {
	ctx, root := obs.Start(ctx, "scrape")
	defer root.End()
	s.mu.Lock()
	s.stats = Stats{}
	s.errs = nil
	s.mu.Unlock()

	done, closeCkpt, err := s.openCheckpoint()
	if err != nil {
		return nil, err
	}
	defer closeCkpt()

	boards, err := s.boards(ctx)
	if err != nil {
		return nil, fmt.Errorf("scraper: board index: %w", err)
	}
	if s.opts.Boards != nil {
		want := make(map[string]bool, len(s.opts.Boards))
		for _, b := range s.opts.Boards {
			want[b] = true
		}
		filtered := boards[:0]
		for _, b := range boards {
			if want[b] {
				filtered = append(filtered, b)
			}
		}
		boards = filtered
	}

	// Thread listings, board by board. A board that stays unreachable is
	// reported and skipped; its sibling boards still crawl.
	var threads []string
	seen := make(map[string]bool)
	for _, board := range boards {
		ts, err := s.threads(ctx, board)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			s.recordError(CrawlError{Board: board, Err: err})
			continue
		}
		s.logf("board %s: %d threads", board, len(ts))
		for _, t := range ts {
			if !seen[t] {
				seen[t] = true
				threads = append(threads, t)
			}
		}
	}
	s.mu.Lock()
	s.stats.Boards = len(boards)
	s.stats.Threads = len(threads)
	s.mu.Unlock()

	// Fan the threads out over the worker pool. byThread is indexed by
	// the deterministic listing order, so the assembled dataset is
	// identical whatever order workers finish in — and identical whether
	// a thread was fetched now or restored from the checkpoint.
	root.AddItems(int64(len(threads)))
	byThread := make([][]forum.Message, len(threads))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < s.opts.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx, wsp := obs.Start(ctx, "scrape.worker")
			wsp.SetWorker(w)
			defer wsp.End()
			for i := range jobs {
				s.crawlThread(wctx, threads[i], done, &byThread[i])
				wsp.AddItems(1)
			}
		}()
	}
feed:
	for i := range threads {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}

	byAuthor := make(map[string][]forum.Message)
	for _, posts := range byThread {
		for _, p := range posts {
			byAuthor[p.Author] = append(byAuthor[p.Author], p)
		}
		s.mu.Lock()
		s.stats.Posts += len(posts)
		s.mu.Unlock()
	}
	names := make([]string, 0, len(byAuthor))
	for a := range byAuthor {
		names = append(names, a)
	}
	sort.Strings(names)
	d := forum.NewDataset(name, platform)
	for _, a := range names {
		d.Aliases = append(d.Aliases, forum.Alias{Name: a, Platform: platform, Messages: byAuthor[a]})
	}
	return d, nil
}

// crawlThread fetches one thread (or restores it from the checkpoint)
// into its result slot. Failures are recorded, never fatal.
func (s *Scraper) crawlThread(ctx context.Context, thread string, done map[string][]forum.Message, out *[]forum.Message) {
	if posts, ok := done[thread]; ok {
		*out = posts
		mResumed.Inc()
		s.mu.Lock()
		s.stats.Resumed++
		s.mu.Unlock()
		return
	}
	posts, err := s.posts(ctx, thread)
	if err != nil {
		if ctx.Err() == nil {
			s.recordError(CrawlError{Thread: thread, Err: err})
		}
		return
	}
	*out = posts
	s.appendCheckpoint(thread, posts)
}

func (s *Scraper) recordError(ce CrawlError) {
	ce.Class = classOf(ce.Err)
	mFailures.With(ce.Class).Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errs = append(s.errs, ce)
	s.stats.Failed++
}

func (s *Scraper) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// boards fetches the board index.
func (s *Scraper) boards(ctx context.Context) ([]string, error) {
	page, err := s.fetch(ctx, s.base+"/")
	if err != nil {
		return nil, err
	}
	var boards []string
	for _, href := range extractHrefs(page, "board") {
		name, err := url.PathUnescape(strings.TrimPrefix(href, "/board/"))
		if err != nil {
			s.logf("skipping malformed board href %q: %v", href, err)
			continue
		}
		boards = append(boards, name)
	}
	return boards, nil
}

// threads walks a board's pagination and returns every thread id.
func (s *Scraper) threads(ctx context.Context, board string) ([]string, error) {
	var threads []string
	next := s.base + "/board/" + url.PathEscape(board)
	for next != "" {
		page, err := s.fetch(ctx, next)
		if err != nil {
			return nil, err
		}
		for _, href := range extractHrefs(page, "thread") {
			id, err := url.PathUnescape(strings.TrimPrefix(href, "/thread/"))
			if err != nil {
				s.logf("skipping malformed thread href %q: %v", href, err)
				continue
			}
			threads = append(threads, id)
		}
		next = s.nextURL(page)
	}
	return threads, nil
}

// posts walks a thread's pagination and parses every post.
func (s *Scraper) posts(ctx context.Context, thread string) ([]forum.Message, error) {
	var posts []forum.Message
	next := s.base + "/thread/" + url.PathEscape(thread)
	pages := 0
	for next != "" {
		if s.opts.MaxPagesPerThread > 0 && pages >= s.opts.MaxPagesPerThread {
			break
		}
		page, err := s.fetch(ctx, next)
		if err != nil {
			return nil, err
		}
		parsed, err := ParsePosts(page)
		if err != nil {
			return nil, err
		}
		for i := range parsed {
			parsed[i].Thread = thread
		}
		posts = append(posts, parsed...)
		next = s.nextURL(page)
		pages++
	}
	return posts, nil
}

// nextURL extracts the "next page" link, absolute-ified against the base.
func (s *Scraper) nextURL(page string) string {
	for _, href := range extractHrefs(page, "next") {
		return s.base + href
	}
	return ""
}

// errGiveUp wraps the last transient failure after retries are exhausted.
var errGiveUp = errors.New("scraper: retries exhausted")

// errPermanent wraps a failure that retrying cannot fix (4xx other than
// 408/429); it costs exactly one request.
var errPermanent = errors.New("scraper: permanent failure")

// statusError is a non-200 response, optionally carrying the server's
// Retry-After wish.
type statusError struct {
	code       int
	retryAfter time.Duration
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d", e.code) }

// transient reports whether the status is worth retrying: server errors,
// timeouts, and rate-limit pushback. Every other 4xx is permanent.
func (e *statusError) transient() bool {
	return e.code >= 500 || e.code == http.StatusRequestTimeout || e.code == http.StatusTooManyRequests
}

// fetch gets one URL with politeness and the retry policy: transient
// failures (5xx, 408, 429, network errors) back off and retry, permanent
// ones (any other 4xx) fail on the first response.
func (s *Scraper) fetch(ctx context.Context, rawURL string) (string, error) {
	var delay time.Duration
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			s.mu.Lock()
			s.stats.Retries++
			s.mu.Unlock()
			if err := sleepCtx(ctx, delay); err != nil {
				return "", err
			}
		}
		if err := s.politeWait(ctx); err != nil {
			return "", err
		}
		body, err := s.get(ctx, rawURL)
		if err == nil {
			return body, nil
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}
		var se *statusError
		if errors.As(err, &se) && !se.transient() {
			return "", fmt.Errorf("%w: %s: %v", errPermanent, rawURL, err)
		}
		if attempt >= s.opts.MaxRetries {
			return "", fmt.Errorf("%w: %s: %v", errGiveUp, rawURL, err)
		}
		delay = s.backoff(attempt, se)
		mRetries.With(retryClass(se)).Inc()
		mBackoff.Observe(delay.Seconds())
		if se != nil && se.retryAfter > 0 {
			mRetryAfter.Inc()
		}
	}
}

// retryClass names the cause of one retry for scraper_retries_total.
func retryClass(se *statusError) string {
	switch {
	case se == nil:
		return "network"
	case se.code == http.StatusRequestTimeout:
		return "408"
	case se.code == http.StatusTooManyRequests:
		return "429"
	default:
		return "5xx"
	}
}

// backoff returns the delay before retry number attempt+1: the server's
// Retry-After wish when it sent one, otherwise BackoffBase doubled per
// attempt with ±50% jitter. Either way the delay never exceeds
// BackoffMax — the shift is guarded so huge retry budgets cannot
// overflow it into zero or negative sleeps.
func (s *Scraper) backoff(attempt int, se *statusError) time.Duration {
	max := s.opts.BackoffMax
	if se != nil && se.retryAfter > 0 {
		if se.retryAfter > max {
			return max
		}
		return se.retryAfter
	}
	d := max
	if attempt < 32 {
		if shifted := s.opts.BackoffBase << attempt; shifted > 0 && shifted < max {
			d = shifted
		}
	}
	s.mu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d)/2 + 1))
	s.mu.Unlock()
	return d/2 + j
}

// politeWait enforces the minimum inter-request interval across all
// workers: each caller reserves the next free slot under the lock, then
// sleeps until its slot without holding it.
func (s *Scraper) politeWait(ctx context.Context) error {
	if s.opts.RequestInterval <= 0 {
		return nil
	}
	s.mu.Lock()
	slot := s.last.Add(s.opts.RequestInterval)
	if now := time.Now(); slot.Before(now) {
		slot = now
	}
	s.last = slot
	s.mu.Unlock()
	if wait := time.Until(slot); wait > 0 {
		return sleepCtx(ctx, wait)
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (s *Scraper) get(ctx context.Context, rawURL string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return "", err
	}
	mRequests.Inc()
	s.mu.Lock()
	s.stats.Requests++
	s.mu.Unlock()
	resp, err := s.opts.Client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		//lint:ignore errdrop best-effort drain so the connection can be reused; the status error below is what matters
		io.Copy(io.Discard, resp.Body)
		se := &statusError{code: resp.StatusCode}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				se.retryAfter = time.Duration(secs) * time.Second
			} else if when, err := http.ParseTime(ra); err == nil {
				se.retryAfter = time.Until(when)
			}
		}
		return "", se
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	return string(body), nil
}
