// Command darklint runs the project's own static analyzers — the
// machine-checked half of the determinism contract the equivalence
// tests pin at runtime. It is a CI gate: any unsuppressed diagnostic
// fails the build.
//
// Usage:
//
//	go run ./cmd/darklint ./...
//	go run ./cmd/darklint -only=wallclock,errdrop ./internal/...
//	go run ./cmd/darklint -wallclock.allow=internal/scraper,cmd ./...
//
// Analyzers: detrand (no global/time-seeded randomness in deterministic
// packages), utcenforce (UTC-pinned time construction where the
// activity profiles need it), maporder (no map-iteration order leaking
// into output), errdrop (no silently discarded errors), wallclock
// (time.Now only on the allowlist). Suppress one finding with
// `//lint:ignore <analyzer> <reason>` on or above the offending line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"darklight/internal/analysis"
	"darklight/internal/analysis/load"
	"darklight/internal/analysis/passes/detrand"
	"darklight/internal/analysis/passes/errdrop"
	"darklight/internal/analysis/passes/maporder"
	"darklight/internal/analysis/passes/utcenforce"
	"darklight/internal/analysis/passes/wallclock"
)

var analyzers = []*analysis.Analyzer{
	detrand.Analyzer,
	errdrop.Analyzer,
	maporder.Analyzer,
	utcenforce.Analyzer,
	wallclock.Analyzer,
}

func main() {
	var (
		only    = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		dir     = flag.String("C", "", "module root to analyze (default: current directory)")
		verbose = flag.Bool("v", false, "report per-package progress and suppressed-finding counts")
	)
	for _, a := range analyzers {
		a := a
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "darklint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(load.Config{Dir: *dir}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "darklint: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		file string
		line int
		col  int
		msg  string
		name string
	}
	var findings []finding
	suppressed := 0
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "darklint: %s\n", pkg.Path)
		}
		sup := analysis.NewSuppressor(pkg.Fset, pkg.Files)
		for _, a := range selected {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.Report = func(d analysis.Diagnostic) {
				if sup.Suppressed(a.Name, d.Pos) {
					suppressed++
					return
				}
				p := pkg.Fset.Position(d.Pos)
				file := p.Filename
				if rel, err := filepath.Rel(mustGetwd(), file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				findings = append(findings, finding{file: file, line: p.Line, col: p.Column, msg: d.Message, name: a.Name})
			}
			if _, err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "darklint: %s on %s: %v\n", a.Name, pkg.Path, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		return a.col < b.col
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.msg, f.name)
	}
	if *verbose && suppressed > 0 {
		fmt.Fprintf(os.Stderr, "darklint: %d finding(s) suppressed by lint:ignore\n", suppressed)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "darklint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
