// Package darkweb serves a forum dataset over HTTP the way a hidden
// service would: board index, paginated thread listings, paginated thread
// pages with posts. It is the test double for the paper's data-collection
// targets ("these sites do not have open APIs; we had to scrape the
// content of the forums", §III-B) — the scraper package crawls it exactly
// as it would crawl the real thing, including slow responses, transient
// errors, rate-limit pushback, stalled circuits, and truncated bodies.
package darkweb

import (
	"fmt"
	"html"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"darklight/internal/forum"
)

// PostsPerPage is the thread pagination size.
const PostsPerPage = 20

// ThreadsPerPage is the board pagination size.
const ThreadsPerPage = 25

// Options tune the server's failure injection. All rates are independent
// probabilities evaluated per request, in the order: FailFirstN,
// FailureRate, RetryAfterRate, then (on the content path) StallRate and
// TruncateRate.
type Options struct {
	// Latency delays every response (simulated Tor circuit time).
	Latency time.Duration
	// FailureRate is the probability of answering 503 instead of content
	// (the scraper must retry). 0 disables.
	FailureRate float64
	// RetryAfterRate is the probability of answering 429 Too Many Requests
	// with a Retry-After header — the forum telling the scraper to slow
	// down. 0 disables.
	RetryAfterRate float64
	// RetryAfter is the Retry-After header value, rounded up to whole
	// seconds as the header demands (default 1s when RetryAfterRate > 0).
	RetryAfter time.Duration
	// StallRate is the probability that a response writes half its body,
	// then stalls for StallFor before completing — a congested circuit. A
	// client with a deadline sees a timeout mid-body. 0 disables.
	StallRate float64
	// StallFor is how long a stalled response hangs (default 1s when
	// StallRate > 0).
	StallFor time.Duration
	// TruncateRate is the probability that a response declares the full
	// Content-Length but closes after half the body — a collapsed circuit.
	// The client sees an unexpected EOF. 0 disables.
	TruncateRate float64
	// FailFirstN makes every distinct URL (path + query) answer 503 to its
	// first N requests and succeed afterwards — deterministic per-page
	// flakiness for retry and pagination tests. 0 disables.
	FailFirstN int
	// Seed drives failure injection.
	Seed int64
}

// Server renders one dataset as a forum.
type Server struct {
	name string
	opts Options

	mu      sync.Mutex
	rng     *rand.Rand
	hits    map[string]int             // URL → requests seen (FailFirstN)
	boards  []string
	threads map[string][]string        // board → thread ids (sorted)
	posts   map[string][]forum.Message // thread id → posts by time
}

// NewServer indexes the dataset into boards and threads. Messages without
// a thread are grouped into a per-board "general" thread.
func NewServer(name string, d *forum.Dataset, opts Options) *Server {
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.StallFor <= 0 {
		opts.StallFor = time.Second
	}
	s := &Server{
		name:    name,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.Seed)),
		hits:    make(map[string]int),
		threads: make(map[string][]string),
		posts:   make(map[string][]forum.Message),
	}
	boardSet := make(map[string]map[string]bool)
	for i := range d.Aliases {
		for _, m := range d.Aliases[i].Messages {
			board := m.Board
			if board == "" {
				board = "general"
			}
			thread := m.Thread
			if thread == "" {
				thread = board + "-general"
			}
			if boardSet[board] == nil {
				boardSet[board] = make(map[string]bool)
			}
			if !boardSet[board][thread] {
				boardSet[board][thread] = true
				s.threads[board] = append(s.threads[board], thread)
			}
			s.posts[thread] = append(s.posts[thread], m)
		}
	}
	for board, threads := range s.threads {
		sort.Strings(threads)
		s.threads[board] = threads
		s.boards = append(s.boards, board)
	}
	sort.Strings(s.boards)
	for _, posts := range s.posts {
		sort.Slice(posts, func(i, j int) bool {
			if !posts[i].PostedAt.Equal(posts[j].PostedAt) {
				return posts[i].PostedAt.Before(posts[j].PostedAt)
			}
			return posts[i].ID < posts[j].ID
		})
	}
	return s
}

// Boards returns the board names.
func (s *Server) Boards() []string { return append([]string(nil), s.boards...) }

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.withChaos(s.handleIndex))
	mux.HandleFunc("/board/", s.withChaos(s.handleBoard))
	mux.HandleFunc("/thread/", s.withChaos(s.handleThread))
	return mux
}

// roll draws one uniform [0,1) variate under the lock.
func (s *Server) roll() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}

// withChaos applies latency and failure injection.
func (s *Server) withChaos(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.opts.Latency > 0 {
			time.Sleep(s.opts.Latency)
		}
		if s.opts.FailFirstN > 0 {
			key := r.URL.EscapedPath()
			if q := r.URL.RawQuery; q != "" {
				key += "?" + q
			}
			s.mu.Lock()
			s.hits[key]++
			flaky := s.hits[key] <= s.opts.FailFirstN
			s.mu.Unlock()
			if flaky {
				http.Error(w, "page flaked, try again", http.StatusServiceUnavailable)
				return
			}
		}
		if s.opts.FailureRate > 0 && s.roll() < s.opts.FailureRate {
			http.Error(w, "circuit collapsed, try again", http.StatusServiceUnavailable)
			return
		}
		if s.opts.RetryAfterRate > 0 && s.roll() < s.opts.RetryAfterRate {
			secs := int((s.opts.RetryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		h(w, r)
	}
}

// pathID recovers the raw board/thread id from the request path. Handlers
// work on the escaped path so ids containing '/', '?', '"', spaces, or
// any other hostile byte survive the round trip (the index emits
// PathEscape'd hrefs, the scraper unescapes them back).
func pathID(r *http.Request, prefix string) (string, bool) {
	esc := strings.TrimPrefix(r.URL.EscapedPath(), prefix)
	id, err := url.PathUnescape(esc)
	if err != nil || id == "" {
		return "", false
	}
	return id, true
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", html.EscapeString(s.name))
	fmt.Fprintf(&b, "<h1>%s</h1>\n<ul class=\"boards\">\n", html.EscapeString(s.name))
	for _, board := range s.boards {
		fmt.Fprintf(&b, "<li><a class=\"board\" href=\"/board/%s\">%s</a> (%d threads)</li>\n",
			url.PathEscape(board), html.EscapeString(board), len(s.threads[board]))
	}
	b.WriteString("</ul></body></html>\n")
	s.writeHTML(w, r, b.String())
}

func (s *Server) handleBoard(w http.ResponseWriter, r *http.Request) {
	board, ok := pathID(r, "/board/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	threads, ok := s.threads[board]
	if !ok {
		http.NotFound(w, r)
		return
	}
	page := pageOf(r)
	start, end, last := paginate(len(threads), ThreadsPerPage, page)
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h2>board: %s</h2>\n<ul class=\"threads\">\n", html.EscapeString(board))
	for _, t := range threads[start:end] {
		fmt.Fprintf(&b, "<li><a class=\"thread\" href=\"/thread/%s\">%s</a> (%d posts)</li>\n",
			url.PathEscape(t), html.EscapeString(t), len(s.posts[t]))
	}
	b.WriteString("</ul>\n")
	if page < last {
		fmt.Fprintf(&b, "<a class=\"next\" href=\"/board/%s?page=%d\">next</a>\n", url.PathEscape(board), page+1)
	}
	b.WriteString("</body></html>\n")
	s.writeHTML(w, r, b.String())
}

func (s *Server) handleThread(w http.ResponseWriter, r *http.Request) {
	thread, ok := pathID(r, "/thread/")
	if !ok {
		http.NotFound(w, r)
		return
	}
	posts, ok := s.posts[thread]
	if !ok {
		http.NotFound(w, r)
		return
	}
	page := pageOf(r)
	start, end, last := paginate(len(posts), PostsPerPage, page)
	var b strings.Builder
	fmt.Fprintf(&b, "<html><body><h2>thread: %s</h2>\n", html.EscapeString(thread))
	for _, p := range posts[start:end] {
		// Attribute values are entity-escaped, not %q-escaped: the
		// scraper's parser understands &#34;, not Go's \".
		fmt.Fprintf(&b,
			"<article class=\"post\" data-id=\"%s\" data-author=\"%s\" data-board=\"%s\" data-time=\"%s\">\n%s\n</article>\n",
			html.EscapeString(p.ID), html.EscapeString(p.Author), html.EscapeString(p.Board),
			p.PostedAt.Format(time.RFC3339), html.EscapeString(p.Body))
	}
	if page < last {
		fmt.Fprintf(&b, "<a class=\"next\" href=\"/thread/%s?page=%d\">next</a>\n", url.PathEscape(thread), page+1)
	}
	b.WriteString("</body></html>\n")
	s.writeHTML(w, r, b.String())
}

// writeHTML delivers the rendered page, possibly stalled or truncated.
func (s *Server) writeHTML(w http.ResponseWriter, r *http.Request, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if s.opts.TruncateRate > 0 && s.roll() < s.opts.TruncateRate {
		// Promise the full body, deliver half, and bail: net/http tears the
		// connection down and the client reads an unexpected EOF.
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write([]byte(body[:len(body)/2]))
		return
	}
	if s.opts.StallRate > 0 && s.roll() < s.opts.StallRate {
		_, _ = w.Write([]byte(body[:len(body)/2]))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		select {
		case <-time.After(s.opts.StallFor):
		case <-r.Context().Done():
			return
		}
		_, _ = w.Write([]byte(body[len(body)/2:]))
		return
	}
	_, _ = w.Write([]byte(body))
}

func pageOf(r *http.Request) int {
	p, err := strconv.Atoi(r.URL.Query().Get("page"))
	if err != nil || p < 0 {
		return 0
	}
	return p
}

// paginate returns the [start, end) slice bounds of a page and the last
// valid page index.
func paginate(total, perPage, page int) (start, end, last int) {
	if total == 0 {
		return 0, 0, 0
	}
	last = (total - 1) / perPage
	if page > last {
		page = last
	}
	start = page * perPage
	end = start + perPage
	if end > total {
		end = total
	}
	return start, end, last
}
