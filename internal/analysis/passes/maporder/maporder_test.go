package maporder_test

import (
	"testing"

	"darklight/internal/analysis/analysistest"
	"darklight/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "internal/features", "other/free")
}
