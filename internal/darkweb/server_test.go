package darkweb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"darklight/internal/forum"
)

func testDataset() *forum.Dataset {
	d := forum.NewDataset("test-forum", forum.PlatformDreamMarket)
	t0 := time.Date(2017, 5, 1, 10, 0, 0, 0, time.UTC)
	var msgs []forum.Message
	for i := 0; i < 45; i++ { // 45 posts in one thread → 3 pages at 20/page
		msgs = append(msgs, forum.Message{
			ID: "m" + itoa(i), Author: "alice", Board: "reviews", Thread: "big-thread",
			Body: "post number " + itoa(i) + ` with <angle> & "quote"`, PostedAt: t0.Add(time.Duration(i) * time.Hour),
		})
	}
	d.Add(forum.Alias{Name: "alice", Messages: msgs})
	d.Add(forum.Alias{Name: "bob", Messages: []forum.Message{
		{ID: "b1", Author: "bob", Board: "scams", Thread: "warning-1", Body: "watch out", PostedAt: t0},
		{ID: "b2", Author: "bob", Body: "no board or thread", PostedAt: t0},
	}})
	return d
}

func itoa(i int) string {
	s := ""
	if i == 0 {
		return "0"
	}
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerIndex(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := get(t, ts, "/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, board := range []string{"reviews", "scams", "general"} {
		if !strings.Contains(body, `href="/board/`+board+`"`) {
			t.Errorf("index missing board %s", board)
		}
	}
	if boards := srv.Boards(); len(boards) != 3 {
		t.Errorf("Boards = %v", boards)
	}
}

func TestServerBoardAndThreadPagination(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := get(t, ts, "/board/reviews")
	if !strings.Contains(body, `href="/thread/big-thread"`) {
		t.Error("board page missing thread link")
	}

	// Thread page 0: 20 posts + next link.
	_, p0 := get(t, ts, "/thread/big-thread")
	if got := strings.Count(p0, "<article"); got != PostsPerPage {
		t.Errorf("page 0 has %d posts", got)
	}
	if !strings.Contains(p0, `href="/thread/big-thread?page=1"`) {
		t.Error("page 0 missing next link")
	}
	// Last page: 5 posts, no next link.
	_, p2 := get(t, ts, "/thread/big-thread?page=2")
	if got := strings.Count(p2, "<article"); got != 5 {
		t.Errorf("page 2 has %d posts", got)
	}
	if strings.Contains(p2, `class="next"`) {
		t.Error("last page must not have a next link")
	}
	// Page beyond the end clamps to the last page.
	_, pbig := get(t, ts, "/thread/big-thread?page=99")
	if got := strings.Count(pbig, "<article"); got != 5 {
		t.Errorf("clamped page has %d posts", got)
	}
}

func TestServerEscapesHTML(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts, "/thread/big-thread")
	if strings.Contains(body, "<angle>") {
		t.Error("post bodies must be HTML-escaped")
	}
	if !strings.Contains(body, "&lt;angle&gt;") {
		t.Error("escaped body missing")
	}
}

func TestServerNotFound(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/board/nope", "/thread/nope", "/bogus"} {
		if code, _ := get(t, ts, path); code != http.StatusNotFound {
			t.Errorf("%s returned %d", path, code)
		}
	}
}

func TestServerFailureInjection(t *testing.T) {
	srv := NewServer("flaky", testDataset(), Options{FailureRate: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if code, _ := get(t, ts, "/"); code != http.StatusServiceUnavailable {
		t.Errorf("failure rate 1 must 503, got %d", code)
	}
}

func TestServerEscapesHostileIDs(t *testing.T) {
	d := NewDataset(t)
	ts := httptest.NewServer(NewServer("hostile", d, Options{}).Handler())
	defer ts.Close()

	_, index := get(t, ts, "/")
	if !strings.Contains(index, `href="/board/spaced%20board"`) {
		t.Error("space not path-escaped in board href")
	}
	if !strings.Contains(index, `href="/board/sla%2Fsh"`) {
		t.Error("slash not path-escaped in board href")
	}
	if strings.Contains(index, `href="/board/quo"te"`) {
		t.Error(`raw '"' leaked into an href attribute`)
	}

	// Every hostile board serves its listing at the escaped URL, and the
	// thread under it serves its posts.
	for _, board := range []string{"spaced board", "sla/sh", `quo"te`, "q?mark", "a&b", "50%off", "uni↯code"} {
		code, body := get(t, ts, "/board/"+url.PathEscape(board))
		if code != http.StatusOK {
			t.Errorf("board %q: status %d", board, code)
			continue
		}
		thread := board + "!thread"
		if !strings.Contains(body, `href="/thread/`+url.PathEscape(thread)+`"`) {
			t.Errorf("board %q: listing missing escaped thread href", board)
		}
		code, page := get(t, ts, "/thread/"+url.PathEscape(thread))
		if code != http.StatusOK || !strings.Contains(page, "<article") {
			t.Errorf("thread %q: status %d, article missing", thread, code)
		}
	}
}

// NewDataset builds a dataset whose board and thread ids hold every byte
// class that breaks naive URL handling.
func NewDataset(t *testing.T) *forum.Dataset {
	t.Helper()
	d := forum.NewDataset("hostile", forum.PlatformSynthetic)
	t0 := time.Date(2017, 5, 1, 10, 0, 0, 0, time.UTC)
	var msgs []forum.Message
	for i, board := range []string{"spaced board", "sla/sh", `quo"te`, "q?mark", "a&b", "50%off", "uni↯code"} {
		msgs = append(msgs, forum.Message{
			ID: "h" + itoa(i), Author: "eve", Board: board, Thread: board + "!thread",
			Body: "post on " + board, PostedAt: t0.Add(time.Duration(i) * time.Hour),
		})
	}
	d.Add(forum.Alias{Name: "eve", Messages: msgs})
	return d
}

func TestServerRetryAfter(t *testing.T) {
	srv := NewServer("busy", testDataset(), Options{RetryAfterRate: 1, RetryAfter: 1500 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want %q (1500ms rounds up)", ra, "2")
	}
}

func TestServerTruncatesBodies(t *testing.T) {
	srv := NewServer("torn", testDataset(), Options{TruncateRate: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Error("truncated response must surface a read error")
	}
}

func TestServerStallsResponses(t *testing.T) {
	srv := NewServer("slow", testDataset(), Options{StallRate: 1, StallFor: 80 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A patient client eventually reads the whole page.
	start := time.Now()
	code, body := get(t, ts, "/")
	if code != http.StatusOK || !strings.Contains(body, "</html>") {
		t.Errorf("stalled page incomplete: status %d", code)
	}
	if time.Since(start) < 70*time.Millisecond {
		t.Error("response did not stall")
	}

	// An impatient one times out mid-body.
	client := &http.Client{Timeout: 20 * time.Millisecond}
	resp, err := client.Get(ts.URL + "/")
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Error("client with a short deadline must fail on a stalled response")
	}
}

func TestServerFailFirstN(t *testing.T) {
	srv := NewServer("flaky-pages", testDataset(), Options{FailFirstN: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i, want := range []int{503, 503, 200} {
		if code, _ := get(t, ts, "/thread/big-thread"); code != want {
			t.Errorf("request %d: status %d, want %d", i, code, want)
		}
	}
	// Distinct pages of the same thread count separately.
	if code, _ := get(t, ts, "/thread/big-thread?page=1"); code != http.StatusServiceUnavailable {
		t.Errorf("page 1 first hit: status %d, want 503", code)
	}
}

func TestUnthreadedMessagesGetDefaultThread(t *testing.T) {
	srv := NewServer("test-forum", testDataset(), Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, body := get(t, ts, "/board/general")
	if !strings.Contains(body, "general-general") {
		t.Error("boardless message must land in the general board's default thread")
	}
}
