package attribution

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"darklight/internal/features"
	"darklight/internal/obs"
	"darklight/internal/prefilter"
)

// Matcher metrics. Every value is a count of work performed — never a
// duration — so totals are identical for any worker count and with
// tracing on or off.
var (
	mRankTotal    = obs.Default().Counter("match_rank_total", "stage-1 rankings computed")
	mRescoreTotal = obs.Default().Counter("match_rescore_total", "stage-2 rescorings computed")
	mDecisions    = obs.Default().CounterVec("match_decisions_total", "final match decisions", "decision")
	mAccepted     = mDecisions.With("accepted")
	mRejected     = mDecisions.With("rejected")
	mCandidates   = obs.Default().Histogram("match_candidates", "stage-1 candidate-list sizes",
		[]float64{0, 1, 2, 5, 10, 20, 50, 100})
	mKnown     = obs.Default().Gauge("matcher_known_subjects", "known subjects indexed by the most recent matcher build")
	mVocabSize = obs.Default().Gauge("matcher_vocab_grams", "reduction-vocabulary size of the most recent matcher build")
	mPostings  = obs.Default().Gauge("matcher_posting_features", "distinct gram features in the most recent matcher's inverted index")
)

// Options configure a Matcher. The zero value is not usable; start from
// DefaultOptions.
type Options struct {
	// K is the candidate-set size of the reduction stage.
	K int
	// Threshold is the acceptance score for the final pair decision.
	Threshold float64
	// Reduction is the stage-1 feature configuration (Table II left).
	Reduction features.Config
	// Final is the stage-2 feature configuration (Table II right).
	Final features.Config
	// UseActivity includes the daily activity profile in the score.
	UseActivity bool
	// ActivityWeight is the relative L2 norm of the activity block
	// (the n-gram block has norm 1). Ignored when UseActivity is false.
	ActivityWeight float64
	// FreqWeight is the relative L2 norm of the 42 punctuation/digit/
	// special-char frequency dimensions.
	FreqWeight float64
	// TwoStage enables the stage-2 TF-IDF recomputation. Disabling it
	// reuses stage-1 scores (an ablation; §IV-H shows two-stage wins).
	TwoStage bool
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Prefilter selects the default stage-1 candidate pre-filter and its
	// knobs. The zero value resolves to the lossless pruned mode, whose
	// top-k is bit-identical to the exact scan; per-query MatchOptions can
	// override the mode. See internal/prefilter.
	Prefilter prefilter.Params
	// Incremental retains the corpus gram counters and each subject's
	// sorted reduction-config document after the build, enabling State()
	// (persistence) and Fold (delta updates without a full rebuild). Costs
	// roughly the size of the extracted corpus in memory; the built index
	// is bit-identical either way.
	Incremental bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options {
	return Options{
		K:              DefaultK,
		Threshold:      DefaultThreshold,
		Reduction:      features.ReductionConfig(),
		Final:          features.FinalConfig(),
		UseActivity:    true,
		ActivityWeight: 0.7,
		FreqWeight:     0.2,
		TwoStage:       true,
	}
}

// weights returns the effective block weights.
func (o Options) weights() Weights {
	w := Weights{Freq: o.FreqWeight, Activity: o.ActivityWeight}
	if !o.UseActivity {
		w.Activity = 0
	}
	return w
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = DefaultK
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	o.Prefilter = o.Prefilter.WithDefaults()
	return o
}

// Scored is a candidate with its similarity score.
type Scored struct {
	Name  string
	Score float64
}

// MatchResult is the full outcome for one unknown alias.
type MatchResult struct {
	// Unknown is the queried alias name.
	Unknown string
	// Candidates is the stage-1 top-k, best first.
	Candidates []Scored
	// Rescored is the stage-2 scoring of the same candidates, best first.
	// Equal to Candidates when TwoStage is off.
	Rescored []Scored
	// Best is Rescored[0] (zero value when the known set is empty).
	Best Scored
	// Accepted reports Best.Score >= Threshold — the pair the algorithm
	// outputs (§IV-I).
	Accepted bool
}

// Matcher links unknown aliases against a fixed set of known aliases.
// Construction precomputes the reduction vocabulary, an inverted index
// over the known subjects' n-gram blocks, and their dense frequency and
// activity blocks; after that Match and MatchAll are safe for concurrent
// use.
type Matcher struct {
	opts  Options
	known []Subject

	vocab *features.Vocabulary
	// Inverted index over gram features: for each feature index, the list
	// of (known subject, normalised value) postings. Scoring an unknown
	// touches only postings of features the unknown actually has.
	postings map[uint32][]posting
	// mask records per-subject block presence (maskGrams/maskFreq/maskAct
	// bits): the subject-side norm depends only on which blocks exist.
	mask []uint8
	// freqs and acts are the dense normalised frequency and activity
	// blocks (nil entries when absent).
	freqs [][]float64
	acts  [][]float64
	// maxContrib holds each gram feature's largest posting value — the
	// per-term contribution caps the pruned pre-filter builds score upper
	// bounds from. Built shard-by-shard alongside the postings and merged.
	maxContrib *prefilter.MaxContrib
	// fwdIdx/fwdVal are the forward gram index: each subject's sorted
	// feature ids and the same float32 values its postings carry. The
	// pre-filtered paths score one subject at a time with an id-ordered
	// merge over these lists, reproducing the posting sweep's float32
	// accumulation bit for bit.
	fwdIdx [][]uint32
	fwdVal [][]float32
	// lshIdx lazily caches one immutable LSH index per operating point
	// actually queried (the default point plus any per-query overrides).
	// lshSets caches each subject's informative gram-id set — the forward
	// list with weightless grams (value below prefilter.MinHashValueFloor)
	// removed — built once on the first LSH query and shared by every
	// operating point.
	lshMu   sync.Mutex
	lshIdx  map[prefilter.LSHParams]*prefilter.LSH
	lshSets [][]uint32
	// bufPool backs the bufferless entry points: the serve path calls Rank
	// per request, and without pooling every request would allocate two
	// known-set-sized accumulators.
	bufPool sync.Pool
	// byName maps a known subject's name to its index (last wins on
	// duplicates, matching historical Rescore behaviour).
	byName map[string]int
	// finalDocs lazily caches the stage-2 (Final-config) extraction of each
	// known subject: the same prolific candidates surface in top-k after
	// top-k, and re-extracting their 1,500-word documents per query is the
	// single largest cost of Rescore. Only subjects that actually appear in
	// a candidate list are ever materialised.
	finalDocs *features.DocCache
	// sameExtract records that the reduction and final configs produce
	// identical raw extractions (they differ only in vocabulary budgets in
	// the paper's setup), letting Match share one unknown-document
	// extraction across both stages.
	sameExtract bool
	// stats and docs are retained only under Options.Incremental: the
	// corpus gram counters the vocabulary was built from, and each known
	// subject's sorted reduction-config document (aligned with known).
	// Together they let Fold subtract a subject's old counts, add its new
	// ones, and re-run only the index pass — and let State() persist
	// enough to do the same after a restart.
	stats *features.VocabBuilder
	docs  []*features.SortedDoc
}

// Subject block-presence bits of Matcher.mask.
const (
	maskGrams uint8 = 1 << iota
	maskFreq
	maskAct
)

// maskNorm is normOf over a presence mask.
func maskNorm(mask uint8, w Weights) float64 {
	return normOf(mask&maskGrams != 0, mask&maskFreq != 0, mask&maskAct != 0, w)
}

// matchBuffers is per-worker scratch reused across Match calls: the dense
// score accumulators sized to the known set, the top-k heap, and the
// pre-filter's per-query scratch. Each MatchAll worker owns one; the
// exported entry points pass nil and draw from the matcher's pool.
type matchBuffers struct {
	scores   []float64
	scores32 []float32
	heap     []heapEntry

	// Pre-filter scratch (fully overwritten each query, never zeroed).
	qv32   []float32 // query gram values in the exact scan's float32 form
	imps   []float64 // per-term impacts
	order  []int     // impact-descending term order
	bounds prefilter.BoundHeap
	cands  []int32  // LSH candidate union
	lshq   []uint32 // query's informative gram-id set (MinHash floor applied)

	// Pruned-walk scratch. pscore is all-zero BETWEEN queries — rankPruned
	// clears exactly the entries it touched on its way out, so a walk that
	// reaches 500 of 100k subjects costs 500 writes, not an O(N) clear.
	// touched lists those entries.
	pscore  []float64
	touched []int32
}

// pruneBufs returns the pruned walk's partial-score accumulator (length
// n, all zero by the invariant above) and the empty touched list.
func (b *matchBuffers) pruneBufs(n int) ([]float64, []int32) {
	if cap(b.pscore) < n {
		b.pscore = make([]float64, n)
	}
	b.pscore = b.pscore[:n]
	return b.pscore, b.touched[:0]
}

// queryVals fills and returns the float32 form of the query gram values —
// the representation the exact posting sweep multiplies by.
func (b *matchBuffers) queryVals(vals []float64) []float32 {
	if cap(b.qv32) < len(vals) {
		b.qv32 = make([]float32, len(vals))
	}
	b.qv32 = b.qv32[:len(vals)]
	for i, v := range vals {
		b.qv32[i] = float32(v)
	}
	return b.qv32
}

// impactBuf returns an uninitialised n-length impact buffer.
func (b *matchBuffers) impactBuf(n int) []float64 {
	if cap(b.imps) < n {
		b.imps = make([]float64, n)
	}
	b.imps = b.imps[:n]
	return b.imps
}

// scoreBufs returns zeroed float64/float32 accumulators of length n,
// reusing capacity from earlier queries.
func (b *matchBuffers) scoreBufs(n int) ([]float64, []float32) {
	if cap(b.scores) < n {
		b.scores = make([]float64, n)
	} else {
		b.scores = b.scores[:n]
		clear(b.scores)
	}
	if cap(b.scores32) < n {
		b.scores32 = make([]float32, n)
	} else {
		b.scores32 = b.scores32[:n]
		clear(b.scores32)
	}
	return b.scores, b.scores32
}

type posting struct {
	subject int
	value   float32
}

// NewMatcher indexes the known subjects. The known slice is retained (the
// second stage re-reads candidate texts); callers must not mutate it.
func NewMatcher(known []Subject, opts Options) (*Matcher, error) {
	return NewMatcherContext(context.Background(), known, opts)
}

// NewMatcherContext is NewMatcher under a context that may carry an
// obs.Tracer: the vocabulary pass emits a "matcher.vocab" span and the
// index pass a "matcher.index" span, each with one shard child per worker
// chunk. The built index is bit-identical with tracing on or off.
func NewMatcherContext(ctx context.Context, known []Subject, opts Options) (*Matcher, error) {
	opts = opts.withDefaults()
	if err := validateOptions(opts); err != nil {
		return nil, err
	}

	// Pass 1: corpus statistics → vocabulary. Each worker extracts a
	// contiguous chunk of subjects into a private builder; the builders
	// merge in shard order. Corpus counters are plain sums and the top-N
	// cut breaks frequency ties by gram id, so the merged vocabulary is
	// bit-identical to a sequential build for any worker count. Docs are
	// dropped as soon as they are folded in — keeping every doc alive
	// would cost ~1 MB per subject — unless Incremental retains their
	// sorted form for Fold/State.
	shards := shardCount(opts.Workers, len(known))
	vctx, vspan := obs.Start(ctx, "matcher.vocab")
	vspan.AddItems(int64(len(known)))
	builders := make([]*features.VocabBuilder, shards)
	var docs []*features.SortedDoc
	if opts.Incremental {
		docs = make([]*features.SortedDoc, len(known))
	}
	parallelChunks(shards, len(known), func(s, lo, hi int) {
		_, ss := obs.Start(vctx, "matcher.vocab.shard")
		ss.SetWorker(s)
		ss.AddItems(int64(hi - lo))
		defer ss.End()
		vb := features.NewVocabBuilder(opts.Reduction)
		for i := lo; i < hi; i++ {
			d := features.Extract(known[i].Text, opts.Reduction)
			if docs != nil {
				sd := d.Sorted()
				docs[i] = sd
				vb.AddSorted(sd)
			} else {
				vb.Add(d)
			}
		}
		builders[s] = vb
	})
	vb := builders[0]
	for _, o := range builders[1:] {
		vb.Merge(o)
	}
	vspan.End()
	var stats *features.VocabBuilder
	if opts.Incremental {
		stats = vb
	}
	return newMatcherFromDocs(ctx, known, docs, stats, vb.Build(), opts)
}

// validateOptions checks the feature configurations of already-defaulted
// options.
func validateOptions(opts Options) error {
	if err := opts.Reduction.Validate(); err != nil {
		return fmt.Errorf("attribution: reduction config: %w", err)
	}
	if opts.TwoStage {
		if err := opts.Final.Validate(); err != nil {
			return fmt.Errorf("attribution: final config: %w", err)
		}
	}
	return nil
}

// newMatcherFromDocs runs the index pass over a frozen vocabulary. docs,
// when non-nil, supplies each subject's pre-sorted reduction document
// (the incremental path — Fold and loads from a snapshot reuse cached
// extractions); when nil every subject is re-extracted from its text. The
// per-entry vectorizer arithmetic is identical either way, so the two
// paths assemble bit-identical indexes. opts must already be defaulted
// and validated; stats and docs are retained on the matcher only under
// opts.Incremental.
func newMatcherFromDocs(ctx context.Context, known []Subject, docs []*features.SortedDoc, stats *features.VocabBuilder, vocab *features.Vocabulary, opts Options) (*Matcher, error) {
	m := &Matcher{opts: opts, known: known, vocab: vocab}
	if opts.Incremental {
		m.stats = stats
		m.docs = docs
	}
	shards := shardCount(opts.Workers, len(known))

	// Pass 2: re-extract, build blocks, and assemble per-shard posting
	// lists in one parallel sweep over the same contiguous chunks. Each
	// shard's postings are subject-ascending within its range, so
	// concatenating the shards in order reproduces exactly the
	// subject-ascending posting lists of a serial build — the order
	// stage-1 accumulates float32 dot products in. The same sweep fills
	// the pre-filter structures: per-feature max contributions (merged
	// across shards; max is order-independent), the forward gram index,
	// and the block-presence masks.
	m.mask = make([]uint8, len(known))
	m.freqs = make([][]float64, len(known))
	m.acts = make([][]float64, len(known))
	m.fwdIdx = make([][]uint32, len(known))
	m.fwdVal = make([][]float32, len(known))
	gramDims := int(m.vocab.FreqOffset())
	ictx, ispan := obs.Start(ctx, "matcher.index")
	ispan.AddItems(int64(len(known)))
	shardPostings := make([]map[uint32][]posting, shards)
	shardMax := make([]*prefilter.MaxContrib, shards)
	parallelChunks(shards, len(known), func(s, lo, hi int) {
		_, ss := obs.Start(ictx, "matcher.index.shard")
		ss.SetWorker(s)
		ss.AddItems(int64(hi - lo))
		defer ss.End()
		local := make(map[uint32][]posting)
		mc := prefilter.NewMaxContrib(gramDims)
		for i := lo; i < hi; i++ {
			var b blocks
			if docs != nil {
				b = buildBlocksFromSortedVocab(docs[i], &known[i], m.vocab)
			} else {
				b = buildBlocks(&known[i], m.vocab, opts.Reduction)
			}
			var msk uint8
			if b.grams.Len() > 0 {
				msk |= maskGrams
			}
			if b.freq != nil {
				msk |= maskFreq
			}
			if b.act != nil {
				msk |= maskAct
			}
			m.mask[i] = msk
			m.freqs[i] = b.freq
			m.acts[i] = b.act
			vals := make([]float32, len(b.grams.Idx))
			for k, idx := range b.grams.Idx {
				v := float32(b.grams.Val[k])
				vals[k] = v
				mc.Note(idx, v)
				local[idx] = append(local[idx], posting{subject: i, value: v})
			}
			m.fwdIdx[i] = b.grams.Idx
			m.fwdVal[i] = vals
		}
		shardPostings[s] = local
		shardMax[s] = mc
	})
	m.postings = make(map[uint32][]posting)
	for _, local := range shardPostings {
		for idx, ps := range local {
			m.postings[idx] = append(m.postings[idx], ps...)
		}
	}
	m.maxContrib = shardMax[0]
	for _, mc := range shardMax[1:] {
		m.maxContrib.Merge(mc)
	}
	m.lshIdx = make(map[prefilter.LSHParams]*prefilter.LSH)
	ispan.End()
	mKnown.Set(float64(len(known)))
	mVocabSize.Set(float64(m.vocab.NumWordGrams() + m.vocab.NumCharGrams()))
	mPostings.Set(float64(len(m.postings)))

	// Stage-2 support structures, hoisted out of Rescore: the name index
	// (previously rebuilt on every call) and the lazy Final-config doc
	// cache (previously re-extracted on every call).
	m.byName = make(map[string]int, len(known))
	texts := make([]string, len(known))
	for i := range known {
		m.byName[known[i].Name] = i
		texts[i] = known[i].Text
	}
	m.finalDocs = features.NewDocCache(opts.Final, texts)
	m.sameExtract = opts.Reduction.SameExtraction(opts.Final)
	return m, nil
}

// shardCount bounds a chunked fan-out: at most one shard per item, at
// least one shard overall.
func shardCount(workers, n int) int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// parallelChunks splits [0, n) into `shards` contiguous ranges and runs
// fn(shard, lo, hi) for each concurrently. Static chunking (rather than
// atomic work-stealing) gives every shard a deterministic item range, which
// the ingest build relies on for order-preserving merges.
func parallelChunks(shards, n int, fn func(shard, lo, hi int)) {
	if shards <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// NumKnown returns the size of the known set.
func (m *Matcher) NumKnown() int { return len(m.known) }

// Vocabulary exposes the reduction vocabulary (for reports and tests).
func (m *Matcher) Vocabulary() *features.Vocabulary { return m.vocab }

// Rank runs stage 1 under the matcher's configured weights and default
// pre-filter mode.
func (m *Matcher) Rank(unknown *Subject, k int) []Scored {
	out, _ := m.RankDetailed(unknown, MatchOptions{K: k})
	return out
}

// RankWith runs stage 1 — cosine similarity of the unknown against every
// known subject — under explicit block weights, returning the top-k best
// first. One index serves any weighting: Table III and Fig. 4 compare
// "text only" (Activity 0) against "all features" from the same matcher.
func (m *Matcher) RankWith(unknown *Subject, k int, w Weights) []Scored {
	out, _ := m.RankDetailed(unknown, MatchOptions{K: k, Weights: &w})
	return out
}

// RankDetailed runs stage 1 under per-query options and reports what the
// candidate pre-filter did alongside the top-k.
func (m *Matcher) RankDetailed(unknown *Subject, o MatchOptions) ([]Scored, prefilter.Stats) {
	doc := features.Extract(unknown.Text, m.opts.Reduction)
	return m.rankDoc(doc, unknown, o, nil)
}

// rankDoc ranks an already-extracted reduction-config document, with
// optional per-worker scratch buffers (drawn from the matcher's pool when
// nil). It resolves the per-query options against the matcher's defaults
// and dispatches to the selected pre-filter path; see rank.go.
func (m *Matcher) rankDoc(doc *features.Doc, unknown *Subject, o MatchOptions, buf *matchBuffers) ([]Scored, prefilter.Stats) {
	mRankTotal.Inc()
	k := o.K
	if k <= 0 {
		k = m.opts.K
	}
	w := m.opts.weights()
	if o.Weights != nil {
		w = *o.Weights
	}
	if buf == nil {
		buf = m.getBuf()
		defer m.putBuf(buf)
	}
	ub := buildBlocksFromDoc(doc, unknown, m.vocab)
	uNorm := ub.norm(w)
	mode := o.Mode
	if mode == prefilter.ModeDefault {
		mode = m.opts.Prefilter.Mode
	}
	if uNorm == 0 {
		// A zero-norm query scores 0 against every subject under every
		// mode; take the exact zero path so the k-padding (all-zero
		// entries in name order) matches historical output.
		scores, _ := buf.scoreBufs(len(m.known))
		st := prefilter.Stats{Mode: prefilter.ModeExact, Candidates: len(m.known), Scored: len(m.known)}
		out, ev := topKScores(m.known, scores, k, &buf.heap)
		st.Evictions = ev
		prefilter.Observe(st)
		return out, st
	}
	if mode == prefilter.ModeLSH && ub.grams.Len() == 0 {
		// Nothing to hash: stay lossless rather than return nothing.
		mode = prefilter.ModePruned
	}
	var out []Scored
	var st prefilter.Stats
	switch mode {
	case prefilter.ModePruned:
		out, st = m.rankPruned(&ub, k, w, uNorm, buf, o.prunedParams(&m.opts.Prefilter))
	case prefilter.ModeLSH:
		out, st = m.rankLSH(&ub, k, w, uNorm, buf, o.lshParams(&m.opts.Prefilter))
	default:
		out, st = m.rankExact(&ub, k, w, uNorm, buf)
	}
	prefilter.Observe(st)
	return out, st
}

// getBuf and putBuf recycle scratch buffers for the bufferless entry
// points. MatchAll workers bypass the pool with worker-owned buffers.
func (m *Matcher) getBuf() *matchBuffers {
	if b, ok := m.bufPool.Get().(*matchBuffers); ok {
		return b
	}
	return &matchBuffers{}
}

func (m *Matcher) putBuf(b *matchBuffers) { m.bufPool.Put(b) }

// normOf is blocks.norm computed from block presence alone (each block is
// unit-normalised, so only presence matters).
func normOf(hasGrams, hasFreq, hasAct bool, w Weights) float64 {
	n := 0.0
	if hasGrams {
		n += 1
	}
	if hasFreq {
		n += w.Freq * w.Freq
	}
	if hasAct {
		n += w.Activity * w.Activity
	}
	return math.Sqrt(n)
}

// Rescore runs stage 2 on a candidate list: rebuild the vocabulary and
// TF-IDF over only the candidates' documents (changing the selected
// n-grams and hence every vector, including the unknown's), then rescore
// by cosine under the matcher's weights. Candidate documents come from the
// matcher's lazy Final-config cache, so repeat candidates cost one
// extraction per matcher lifetime, not one per query.
func (m *Matcher) Rescore(unknown *Subject, candidates []Scored) []Scored {
	return m.rescoreDoc(nil, unknown, candidates)
}

// rescoreDoc is Rescore with an optional pre-extracted unknown document
// (valid only when the reduction and final configs share extraction —
// Match checks m.sameExtract before passing one).
func (m *Matcher) rescoreDoc(udoc *features.Doc, unknown *Subject, candidates []Scored) []Scored {
	mRescoreTotal.Inc()
	idxs := make([]int, 0, len(candidates))
	for _, c := range candidates {
		if i, ok := m.byName[c.Name]; ok {
			idxs = append(idxs, i)
		}
	}
	docs := make([]*features.SortedDoc, len(idxs))
	for j, i := range idxs {
		docs[j] = m.finalDocs.Get(i)
	}
	// The per-query vocabulary rebuild runs over id-sorted gram lists (the
	// cache stores candidates pre-flattened); the map-based VocabBuilder
	// path costs more than everything else in Rescore combined.
	vocab := features.BuildCandidateVocab(m.opts.Final, docs)

	w := m.opts.weights()
	if udoc == nil {
		udoc = features.Extract(unknown.Text, m.opts.Final)
	}
	ub := buildBlocksFromSorted(udoc.Sorted(), unknown, vocab)
	out := make([]Scored, 0, len(idxs))
	for j, i := range idxs {
		s := &m.known[i]
		cb := buildBlocksFromSorted(docs[j], s, vocab)
		out = append(out, Scored{Name: s.Name, Score: similarity(&ub, &cb, w)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Name < out[b].Name
	})
	return out
}

// Match runs the full §IV-I algorithm for one unknown.
func (m *Matcher) Match(unknown *Subject) MatchResult {
	return m.match(context.Background(), unknown, nil, MatchOptions{})
}

// MatchWith is Match under per-query ranking options (pre-filter mode,
// k, weights). Stage 2 is unaffected: it rescores whatever candidate set
// stage 1 produced.
func (m *Matcher) MatchWith(unknown *Subject, o MatchOptions) MatchResult {
	return m.match(context.Background(), unknown, nil, o)
}

// match is Match with optional per-worker scratch and a context that may
// carry a tracer (per-query "match.rank" / "match.rescore" spans). The
// unknown's document is extracted once; when the two stages share an
// extraction config (the paper's setup) the same document also feeds
// Rescore.
func (m *Matcher) match(ctx context.Context, unknown *Subject, buf *matchBuffers, o MatchOptions) MatchResult {
	res := MatchResult{Unknown: unknown.Name}
	udoc := features.Extract(unknown.Text, m.opts.Reduction)
	_, rsp := obs.Start(ctx, "match.rank")
	res.Candidates, _ = m.rankDoc(udoc, unknown, o, buf)
	rsp.AddItems(int64(len(res.Candidates)))
	rsp.End()
	mCandidates.Observe(float64(len(res.Candidates)))
	if len(res.Candidates) == 0 {
		mRejected.Inc()
		return res
	}
	if m.opts.TwoStage {
		rdoc := udoc
		if !m.sameExtract {
			rdoc = nil
		}
		_, ssp := obs.Start(ctx, "match.rescore")
		res.Rescored = m.rescoreDoc(rdoc, unknown, res.Candidates)
		ssp.AddItems(int64(len(res.Rescored)))
		ssp.End()
	} else {
		res.Rescored = res.Candidates
	}
	res.Best = res.Rescored[0]
	res.Accepted = res.Best.Score >= m.opts.Threshold
	if res.Accepted {
		mAccepted.Inc()
	} else {
		mRejected.Inc()
	}
	return res
}

// MatchAll matches every unknown concurrently over a bounded worker pool.
// Results are positionally aligned with the input. The context cancels
// remaining work; cancelled entries carry only the Unknown name.
func (m *Matcher) MatchAll(ctx context.Context, unknowns []Subject) ([]MatchResult, error) {
	actx, aspan := obs.Start(ctx, "match.all")
	aspan.AddItems(int64(len(unknowns)))
	defer aspan.End()
	results := make([]MatchResult, len(unknowns))
	jobs := make(chan int)
	var wg sync.WaitGroup
	workers := m.opts.Workers
	if workers > len(unknowns) {
		workers = len(unknowns)
	}
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx, wsp := obs.Start(actx, "match.worker")
			wsp.SetWorker(w)
			defer wsp.End()
			// Each worker owns one scratch buffer for the whole run:
			// score accumulators and the top-k heap are sized once and
			// reused across every query the worker picks up.
			var buf matchBuffers
			for i := range jobs {
				results[i] = m.match(wctx, &unknowns[i], &buf, MatchOptions{})
				wsp.AddItems(1)
			}
		}()
	}
	var err error
feed:
	for i := range unknowns {
		select {
		case jobs <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err != nil {
		for i := range results {
			if results[i].Unknown == "" {
				results[i].Unknown = unknowns[i].Name
			}
		}
	}
	return results, err
}
