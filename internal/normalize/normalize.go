// Package normalize implements the data-polishing pipeline of §III-C of
// the paper — the twelve steps that turn raw scraped forum data into
// analysable text:
//
//  1. drop accounts whose nickname starts or ends with "bot"
//  2. drop duplicate messages (vendor reposts, Reddit cross-posts)
//  3. normalise URLs to their hostname
//  4. strip emoji
//  5. drop messages shorter than 10 words
//  6. drop messages whose distinct-word ratio is below 0.5 (spam)
//  7. keep only messages written in English
//  8. strip quoted text (keep only what the account holder wrote)
//  9. strip "Edit by <username>" markers
//  10. replace mail addresses with the "_mail_" tag
//  11. strip armored PGP keys
//  12. drop words longer than 34 characters (ASCII art, unarmored keys)
//
// Each step is a named Step value so callers can run the full paper
// pipeline, a subset, or interleave their own steps; the Report records
// what every step removed, which the tests and the experiment harness use.
//
// # Parallel execution
//
// Every paper step is alias-local: it reads and writes one alias at a time
// and never looks across aliases (deduplication is per-alias — vendors
// repost their own showcase). Running the whole step chain on alias A and
// then on alias B is therefore indistinguishable from running each step
// over all aliases in turn, and the Report's counters are plain integer
// sums, which commute. Pipeline.Run exploits this: with Workers > 1 the
// aliases fan out over contiguous chunks, each worker runs the full step
// chain per alias into a private per-step counter block, and the merge sums
// the blocks in step order. The result — surviving aliases, message bodies,
// and every Report counter — is bit-identical to the sequential run for
// any worker count.
package normalize

import (
	"context"
	"fmt"
	"net/url"
	"regexp"
	"runtime"
	"strings"
	"sync"

	"darklight/internal/forum"
	"darklight/internal/langdetect"
	"darklight/internal/obs"
	"darklight/internal/tokenize"
)

// Pipeline metrics. Values are derived from the merged Report counters —
// plain integer sums identical for any worker count — so the exposed
// series match sequential runs exactly.
var (
	mPolishRuns   = obs.Default().Counter("polish_runs_total", "completed polish pipeline runs")
	mStepAliases  = obs.Default().CounterVec("polish_step_aliases_removed_total", "aliases removed per polish step", "step")
	mStepRemoved  = obs.Default().CounterVec("polish_step_messages_removed_total", "messages removed per polish step", "step")
	mStepModified = obs.Default().CounterVec("polish_step_messages_modified_total", "messages modified per polish step", "step")
	mStepBytesIn  = obs.Default().CounterVec("polish_step_bytes_in_total", "message-body bytes entering each polish step", "step")
	mStepBytesOut = obs.Default().CounterVec("polish_step_bytes_out_total", "message-body bytes surviving each polish step", "step")
	mLangdetect   = obs.Default().CounterVec("polish_langdetect_messages_total", "messages classified by the language detector (english-only step)", "result")
	mLangEnglish  = mLangdetect.With("english")
	mLangRejected = mLangdetect.With("rejected")
)

// Defaults for the paper's thresholds.
const (
	// MinWords is the minimum message length in words (step 5).
	MinWords = 10
	// MinDistinctRatio is the spam threshold of step 6.
	MinDistinctRatio = 0.5
	// MaxWordLen is the longest token kept by step 12.
	MaxWordLen = 34
	// MailTag replaces email addresses (step 10).
	MailTag = "_mail_"
	// MinEnglishProb is the language-detector confidence needed to keep a
	// message as English (step 7).
	MinEnglishProb = 0.50
)

// Step is one polishing stage. Apply mutates the dataset in place and adds
// its effect to the report.
type Step struct {
	// Name identifies the step ("strip-emoji").
	Name string
	// Paper is the step number in §III-C, 0 for extensions.
	Paper int
	// Apply runs the step.
	Apply func(d *forum.Dataset, r *Report)
	// applyAlias is the alias-local form the parallel runner fans out:
	// process one alias, accumulate into sr, and report whether the alias
	// itself is removed. Steps without it force the sequential path.
	applyAlias func(a *forum.Alias, sr *StepReport) bool
}

// Report accumulates per-step statistics.
type Report struct {
	// Steps lists per-step effects in execution order.
	Steps []StepReport
}

// StepReport describes what one step changed. BytesIn/BytesOut are the
// message-body bytes entering and surviving the step — the per-step byte
// deltas the polish metrics export. Both are integer sums over aliases,
// so the parallel merge reproduces them exactly.
type StepReport struct {
	Name             string
	AliasesRemoved   int
	MessagesRemoved  int
	MessagesModified int
	BytesIn          int64
	BytesOut         int64
}

// String renders a compact human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "%-18s aliases-removed=%-5d messages-removed=%-6d modified=%-5d bytes=%d->%d\n",
			s.Name, s.AliasesRemoved, s.MessagesRemoved, s.MessagesModified, s.BytesIn, s.BytesOut)
	}
	return b.String()
}

func (r *Report) add(s StepReport) { r.Steps = append(r.Steps, s) }

// Pipeline is an ordered list of steps.
type Pipeline struct {
	steps    []Step
	detector *langdetect.Detector
	workers  int
}

// Option configures a Pipeline.
type Option func(*Pipeline)

// WithDetector overrides the language detector (the default is the
// embedded-profile detector).
func WithDetector(d *langdetect.Detector) Option {
	return func(p *Pipeline) { p.detector = d }
}

// WithWorkers bounds the pipeline's parallelism; n <= 0 means GOMAXPROCS.
// Output is bit-identical for every worker count (see the package comment),
// so this is purely a throughput knob.
func WithWorkers(n int) Option {
	return func(p *Pipeline) { p.workers = n }
}

// NewPipeline returns the full 12-step paper pipeline. Runs are parallel
// over GOMAXPROCS workers by default; WithWorkers adjusts the bound.
func NewPipeline(opts ...Option) *Pipeline {
	p := &Pipeline{detector: langdetect.Default()}
	for _, o := range opts {
		o(p)
	}
	p.steps = []Step{
		{Name: "drop-bots", Paper: 1, Apply: dropBots, applyAlias: dropBotsAlias},
		{Name: "dedup-messages", Paper: 2, Apply: dedupMessages, applyAlias: dedupMessagesAlias},
		{Name: "strip-quotes", Paper: 8, Apply: stripQuotes, applyAlias: stripQuotesAlias},
		{Name: "strip-edit-marks", Paper: 9, Apply: stripEditMarks, applyAlias: stripEditMarksAlias},
		{Name: "strip-pgp", Paper: 11, Apply: stripPGP, applyAlias: stripPGPAlias},
		{Name: "tag-mail", Paper: 10, Apply: tagMail, applyAlias: tagMailAlias},
		{Name: "normalize-urls", Paper: 3, Apply: normalizeURLs, applyAlias: normalizeURLsAlias},
		{Name: "strip-emoji", Paper: 4, Apply: stripEmoji, applyAlias: stripEmojiAlias},
		{Name: "drop-long-words", Paper: 12, Apply: dropLongWords, applyAlias: dropLongWordsAlias},
		{Name: "english-only", Paper: 7, Apply: p.englishOnly, applyAlias: p.englishOnlyAlias},
		{Name: "drop-short", Paper: 5, Apply: dropShort, applyAlias: dropShortAlias},
		{Name: "drop-spam", Paper: 6, Apply: dropSpam, applyAlias: dropSpamAlias},
	}
	return p
}

// Steps returns the step names in execution order.
func (p *Pipeline) Steps() []string {
	names := make([]string, len(p.steps))
	for i, s := range p.steps {
		names[i] = s.Name
	}
	return names
}

// Run executes every step in order and returns the report. The dataset is
// modified in place; aliases left with zero messages are removed at the end.
//
// The execution order differs from the paper's listing order: text-mutating
// steps (quotes, PGP, mail, URLs, emoji) run before the filters that
// measure length, spam ratio, and language, so the filters see the text the
// feature extractor will see.
//
// With more than one worker the aliases fan out over a worker pool; the
// result is bit-identical to the sequential run (see the package comment).
func (p *Pipeline) Run(d *forum.Dataset) *Report {
	return p.RunContext(context.Background(), d)
}

// RunContext is Run under a context that may carry an obs.Tracer. With
// tracing enabled the run emits a "polish" root span; sequential runs nest
// one "polish.step.<name>" span per step, parallel runs nest one
// "polish.worker" span per worker. The dataset, the report — including the
// byte deltas — and every exported metric are bit-identical with tracing
// on or off, and for any worker count.
func (p *Pipeline) RunContext(ctx context.Context, d *forum.Dataset) *Report {
	ctx, root := obs.Start(ctx, "polish")
	defer root.End()
	root.AddItems(int64(d.Len()))

	workers := p.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > d.Len() {
		workers = d.Len()
	}
	var r *Report
	if workers > 1 && p.perAliasCapable() {
		r = p.runParallel(ctx, d, workers)
	} else {
		r = &Report{}
		for _, s := range p.steps {
			_, sp := obs.Start(ctx, "polish.step."+s.Name)
			s.Apply(d, r)
			if n := len(r.Steps); n > 0 {
				sr := &r.Steps[n-1]
				sp.AddItems(int64(sr.MessagesRemoved + sr.MessagesModified))
				sp.AddBytes(sr.BytesIn - sr.BytesOut)
			}
			sp.End()
		}
	}
	// Final sweep: drop aliases that lost all messages (they carry zero
	// bytes, so BytesIn == BytesOut == the surviving corpus size).
	before := d.Len()
	bytes := datasetBytes(d)
	kept := d.Filter(func(a *forum.Alias) bool { return len(a.Messages) > 0 })
	d.Aliases = kept.Aliases
	r.add(StepReport{Name: "drop-empty-aliases", AliasesRemoved: before - d.Len(), BytesIn: bytes, BytesOut: bytes})
	exportReport(r)
	return r
}

// exportReport folds the merged report into the polish metrics.
func exportReport(r *Report) {
	for i := range r.Steps {
		s := &r.Steps[i]
		mStepAliases.With(s.Name).Add(int64(s.AliasesRemoved))
		mStepRemoved.With(s.Name).Add(int64(s.MessagesRemoved))
		mStepModified.With(s.Name).Add(int64(s.MessagesModified))
		mStepBytesIn.With(s.Name).Add(s.BytesIn)
		mStepBytesOut.With(s.Name).Add(s.BytesOut)
	}
	mPolishRuns.Inc()
}

// aliasBytes sums one alias's message-body bytes.
func aliasBytes(a *forum.Alias) int64 {
	var n int64
	for i := range a.Messages {
		n += int64(len(a.Messages[i].Body))
	}
	return n
}

// datasetBytes sums every alias's message-body bytes.
func datasetBytes(d *forum.Dataset) int64 {
	var n int64
	for i := range d.Aliases {
		n += aliasBytes(&d.Aliases[i])
	}
	return n
}

// perAliasCapable reports whether every step carries the alias-local form
// the parallel runner needs.
func (p *Pipeline) perAliasCapable() bool {
	for i := range p.steps {
		if p.steps[i].applyAlias == nil {
			return false
		}
	}
	return true
}

// runParallel fans the aliases out over contiguous chunks. Each worker runs
// the full step chain alias by alias into a private per-step counter block;
// blocks merge by integer summation in step order, and dropped aliases are
// compacted in input order — both bit-identical to the sequential run.
func (p *Pipeline) runParallel(ctx context.Context, d *forum.Dataset, workers int) *Report {
	n := d.Len()
	accs := make([][]StepReport, workers)
	dropped := make([]bool, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		acc := make([]StepReport, len(p.steps))
		accs[w] = acc
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := obs.Start(ctx, "polish.worker")
			sp.SetWorker(w)
			sp.AddItems(int64(hi - lo))
			defer sp.End()
			for i := lo; i < hi; i++ {
				a := &d.Aliases[i]
				for si := range p.steps {
					// Per-alias byte accounting, computed exactly as the
					// sequential applyPerAlias does, so the merged sums match
					// bit for bit.
					acc[si].BytesIn += aliasBytes(a)
					if p.steps[si].applyAlias(a, &acc[si]) {
						dropped[i] = true
						break
					}
					acc[si].BytesOut += aliasBytes(a)
				}
			}
		}()
	}
	wg.Wait()
	r := &Report{Steps: make([]StepReport, len(p.steps))}
	for si := range p.steps {
		m := &r.Steps[si]
		m.Name = p.steps[si].Name
		for w := range accs {
			m.AliasesRemoved += accs[w][si].AliasesRemoved
			m.MessagesRemoved += accs[w][si].MessagesRemoved
			m.MessagesModified += accs[w][si].MessagesModified
			m.BytesIn += accs[w][si].BytesIn
			m.BytesOut += accs[w][si].BytesOut
		}
	}
	kept := d.Aliases[:0]
	for i := range d.Aliases {
		if dropped[i] {
			continue
		}
		kept = append(kept, d.Aliases[i])
	}
	d.Aliases = kept
	return r
}

// applyPerAlias runs an alias-local step over the whole dataset — the
// sequential Apply form every paper step derives from.
func applyPerAlias(name string, fn func(*forum.Alias, *StepReport) bool, d *forum.Dataset, r *Report) {
	sr := StepReport{Name: name}
	kept := d.Aliases[:0]
	for i := range d.Aliases {
		a := &d.Aliases[i]
		sr.BytesIn += aliasBytes(a)
		if fn(a, &sr) {
			continue
		}
		sr.BytesOut += aliasBytes(a)
		kept = append(kept, d.Aliases[i])
	}
	d.Aliases = kept
	r.add(sr)
}

// --- step 1: bots ---

func dropBots(d *forum.Dataset, r *Report) { applyPerAlias("drop-bots", dropBotsAlias, d, r) }

func dropBotsAlias(a *forum.Alias, sr *StepReport) bool {
	if !a.IsLikelyBot() {
		return false
	}
	sr.AliasesRemoved++
	sr.MessagesRemoved += len(a.Messages)
	return true
}

// --- step 2: duplicates ---

// dedupMessages removes duplicate bodies per alias (vendors repost their
// showcase; redditors cross-post across subreddits). The first occurrence
// by timestamp wins so activity profiles keep the original posting time.
func dedupMessages(d *forum.Dataset, r *Report) {
	applyPerAlias("dedup-messages", dedupMessagesAlias, d, r)
}

func dedupMessagesAlias(a *forum.Alias, sr *StepReport) bool {
	seen := make(map[string]int, len(a.Messages)) // body → index of kept msg
	kept := a.Messages[:0]
	for _, m := range a.Messages {
		key := strings.TrimSpace(m.Body)
		if j, dup := seen[key]; dup {
			if m.PostedAt.Before(kept[j].PostedAt) {
				kept[j] = m
			}
			sr.MessagesRemoved++
			continue
		}
		seen[key] = len(kept)
		kept = append(kept, m)
	}
	a.Messages = kept
	return false
}

// --- step 3: URLs ---

var schemeURLRe = regexp.MustCompile(`(?i)\b(?:https?|ftp)://[^\s<>"')\]]+`)

// NormalizeURL reduces a URL to its hostname ("https://www.reddit.com/r/x"
// → "reddit"-style hostname per the paper; we keep the full hostname,
// dropping scheme, path, query and the "www." prefix).
func NormalizeURL(raw string) string {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		// Fall back to manual trimming for malformed URLs.
		s := raw
		if i := strings.Index(s, "://"); i >= 0 {
			s = s[i+3:]
		}
		if i := strings.IndexAny(s, "/?#"); i >= 0 {
			s = s[:i]
		}
		return strings.TrimPrefix(strings.ToLower(s), "www.")
	}
	return strings.TrimPrefix(strings.ToLower(u.Hostname()), "www.")
}

func normalizeURLs(d *forum.Dataset, r *Report) {
	applyPerAlias("normalize-urls", normalizeURLsAlias, d, r)
}

func normalizeURLsAlias(a *forum.Alias, sr *StepReport) bool {
	for j := range a.Messages {
		m := &a.Messages[j]
		// The pattern requires a literal "://"; most bodies have none, and
		// the substring probe is far cheaper than the regexp engine.
		if !strings.Contains(m.Body, "://") {
			continue
		}
		out := schemeURLRe.ReplaceAllStringFunc(m.Body, NormalizeURL)
		if out != m.Body {
			m.Body = out
			sr.MessagesModified++
		}
	}
	return false
}

// --- step 4: emoji ---

func stripEmoji(d *forum.Dataset, r *Report) { applyPerAlias("strip-emoji", stripEmojiAlias, d, r) }

func stripEmojiAlias(a *forum.Alias, sr *StepReport) bool {
	for j := range a.Messages {
		m := &a.Messages[j]
		out := tokenize.StripEmoji(m.Body)
		if out != m.Body {
			m.Body = out
			sr.MessagesModified++
		}
	}
	return false
}

// --- step 5: short messages ---

func dropShort(d *forum.Dataset, r *Report) { applyPerAlias("drop-short", dropShortAlias, d, r) }

func dropShortAlias(a *forum.Alias, sr *StepReport) bool {
	kept := a.Messages[:0]
	for _, m := range a.Messages {
		if m.WordCount() < MinWords {
			sr.MessagesRemoved++
			continue
		}
		kept = append(kept, m)
	}
	a.Messages = kept
	return false
}

// --- step 6: spam ratio ---

func dropSpam(d *forum.Dataset, r *Report) { applyPerAlias("drop-spam", dropSpamAlias, d, r) }

func dropSpamAlias(a *forum.Alias, sr *StepReport) bool {
	kept := a.Messages[:0]
	for _, m := range a.Messages {
		if m.DistinctWordRatio() < MinDistinctRatio {
			sr.MessagesRemoved++
			continue
		}
		kept = append(kept, m)
	}
	a.Messages = kept
	return false
}

// --- step 7: language ---

func (p *Pipeline) englishOnly(d *forum.Dataset, r *Report) {
	applyPerAlias("english-only", p.englishOnlyAlias, d, r)
}

// englishOnlyAlias shares p.detector across workers — the detector is
// immutable after construction and documented concurrency-safe (see
// langdetect.Detector and its race test).
func (p *Pipeline) englishOnlyAlias(a *forum.Alias, sr *StepReport) bool {
	kept := a.Messages[:0]
	for _, m := range a.Messages {
		if !p.detector.IsEnglish(m.Body, MinEnglishProb) {
			sr.MessagesRemoved++
			mLangRejected.Inc()
			continue
		}
		mLangEnglish.Inc()
		kept = append(kept, m)
	}
	a.Messages = kept
	return false
}

// --- step 8: quotes ---

// StripQuoteText removes quoted material from a message body: Reddit-style
// "> " lines and BB-style [quote]...[/quote] blocks (nested blocks are
// removed with a depth counter — Go regexps have no lookahead, and the
// naive non-greedy regex pairs an outer opener with an inner closer).
func StripQuoteText(body string) string {
	body = stripBBQuotes(body)
	lines := strings.Split(body, "\n")
	kept := lines[:0]
	for _, ln := range lines {
		if strings.HasPrefix(strings.TrimSpace(ln), ">") {
			continue
		}
		kept = append(kept, ln)
	}
	return strings.TrimSpace(strings.Join(kept, "\n"))
}

// stripBBQuotes removes [quote...]...[/quote] blocks, tracking nesting
// depth. Unbalanced openers discard to end of text (quoted garbage beats
// leaked foreign text); unbalanced closers are dropped as stray markup.
func stripBBQuotes(body string) string {
	lower := strings.ToLower(body)
	var b strings.Builder
	depth := 0
	i := 0
	for i < len(body) {
		switch {
		case strings.HasPrefix(lower[i:], "[quote"):
			end := strings.IndexByte(lower[i:], ']')
			if end < 0 { // unterminated opener tag
				i = len(body)
				continue
			}
			depth++
			i += end + 1
		case strings.HasPrefix(lower[i:], "[/quote]"):
			if depth > 0 {
				depth--
				if depth == 0 {
					b.WriteByte(' ')
				}
			}
			i += len("[/quote]")
		default:
			if depth == 0 {
				b.WriteByte(body[i])
			}
			i++
		}
	}
	return b.String()
}

func stripQuotes(d *forum.Dataset, r *Report) {
	applyPerAlias("strip-quotes", stripQuotesAlias, d, r)
}

func stripQuotesAlias(a *forum.Alias, sr *StepReport) bool {
	for j := range a.Messages {
		m := &a.Messages[j]
		body := m.Body
		if m.Quoted != "" {
			body = strings.ReplaceAll(body, m.Quoted, " ")
		}
		var out string
		if strings.IndexByte(body, '>') < 0 && strings.IndexByte(body, '[') < 0 {
			// Without a '>' no line has a quote prefix and without a '[' no
			// BB tag opens, so StripQuoteText reduces to TrimSpace.
			out = strings.TrimSpace(body)
		} else {
			out = StripQuoteText(body)
		}
		if out != m.Body {
			m.Body = out
			sr.MessagesModified++
		}
	}
	return false
}

// --- step 9: edit marks ---

// "Edit by <username>" (and common variants "Edited by X", "EDIT:") up to
// end of line — the platform-added attribution string of §III-C(9).
var editMarkRe = regexp.MustCompile(`(?im)^\s*(?:last\s+)?edit(?:ed)?\s*(?:by\s+\S+|:)?[^\n]*$`)

// containsEditFold reports whether s contains "edit" under ASCII case
// folding — a necessary condition for editMarkRe to match, checked before
// invoking the far costlier regexp engine.
func containsEditFold(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i]|0x20 == 'e' && s[i+1]|0x20 == 'd' && s[i+2]|0x20 == 'i' && s[i+3]|0x20 == 't' {
			return true
		}
	}
	return false
}

func stripEditMarks(d *forum.Dataset, r *Report) {
	applyPerAlias("strip-edit-marks", stripEditMarksAlias, d, r)
}

func stripEditMarksAlias(a *forum.Alias, sr *StepReport) bool {
	for j := range a.Messages {
		m := &a.Messages[j]
		if !containsEditFold(m.Body) {
			// The regexp cannot match, so the step reduces to the trailing
			// TrimSpace (TrimSpace slices, it never allocates).
			if out := strings.TrimSpace(m.Body); out != m.Body {
				m.Body = out
				sr.MessagesModified++
			}
			continue
		}
		out := strings.TrimSpace(editMarkRe.ReplaceAllString(m.Body, ""))
		if out != m.Body {
			m.Body = out
			sr.MessagesModified++
		}
	}
	return false
}

// --- step 10: mail addresses ---

var mailRe = regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`)

func tagMail(d *forum.Dataset, r *Report) { applyPerAlias("tag-mail", tagMailAlias, d, r) }

func tagMailAlias(a *forum.Alias, sr *StepReport) bool {
	for j := range a.Messages {
		m := &a.Messages[j]
		// An address needs a literal '@'; skip the regexp without one.
		if strings.IndexByte(m.Body, '@') < 0 {
			continue
		}
		out := mailRe.ReplaceAllString(m.Body, MailTag)
		if out != m.Body {
			m.Body = out
			sr.MessagesModified++
		}
	}
	return false
}

// --- step 11: PGP ---

func stripPGP(d *forum.Dataset, r *Report) { applyPerAlias("strip-pgp", stripPGPAlias, d, r) }

func stripPGPAlias(a *forum.Alias, sr *StepReport) bool {
	for j := range a.Messages {
		m := &a.Messages[j]
		if !tokenize.ContainsPGP(m.Body) {
			continue
		}
		m.Body = tokenize.StripPGP(m.Body)
		sr.MessagesModified++
	}
	return false
}

// --- step 12: overlong words ---

// mayHaveLongWord reports whether any run of non-(ASCII-space) bytes
// exceeds MaxWordLen bytes. A token longer than MaxWordLen runes spans at
// least that many bytes and contains no ASCII whitespace, so a false
// result proves no word can be dropped — without the Fields/Join pass.
func mayHaveLongWord(s string) bool {
	run := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\v', '\f', '\r':
			run = 0
		default:
			run++
			if run > MaxWordLen {
				return true
			}
		}
	}
	return false
}

func dropLongWords(d *forum.Dataset, r *Report) {
	applyPerAlias("drop-long-words", dropLongWordsAlias, d, r)
}

func dropLongWordsAlias(a *forum.Alias, sr *StepReport) bool {
	for j := range a.Messages {
		m := &a.Messages[j]
		if !mayHaveLongWord(m.Body) {
			continue
		}
		fields := strings.Fields(m.Body)
		changed := false
		kept := fields[:0]
		for _, f := range fields {
			if len([]rune(f)) > MaxWordLen {
				changed = true
				continue
			}
			kept = append(kept, f)
		}
		if changed {
			m.Body = strings.Join(kept, " ")
			sr.MessagesModified++
		}
	}
	return false
}
